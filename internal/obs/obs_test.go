package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	// le semantics: an observation equal to a bound lands in that bound's
	// bucket, one infinitesimally above lands in the next.
	h.Observe(0.5)  // bucket le=1
	h.Observe(1)    // bucket le=1 (inclusive)
	h.Observe(1.01) // bucket le=5
	h.Observe(5)    // bucket le=5
	h.Observe(7)    // bucket le=10
	h.Observe(10)   // bucket le=10
	h.Observe(11)   // +Inf overflow
	s := h.Snapshot()
	want := []int64{2, 2, 2, 1}
	if len(s.Counts) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count: got %d, want 7", s.Count)
	}
	wantSum := 0.5 + 1 + 1.01 + 5 + 7 + 10 + 11
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum: got %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewDurationHistogram()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count: got %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	// Sum of 0..n-1 microseconds.
	n := float64(goroutines * perG)
	wantSum := n * (n - 1) / 2 * 1e-6
	if math.Abs(s.Sum-wantSum) > wantSum*1e-9 {
		t.Errorf("sum: got %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Errorf("nil histogram count: got %d", h.Count())
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 uniform observations in (0,40]: quantiles should be ~40q.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 20, 1},
		{0.95, 38, 1},
		{0.99, 39.6, 1},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%g: got %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
	// Overflow observations report the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile: got %g, want 1", got)
	}
}

func TestExpositionRendering(t *testing.T) {
	e := NewExposition()
	e.Counter("geo_chunks_total", "Chunks processed.", 42, L("op", `spatial"restrict\x`))
	e.Gauge("geo_depth", "", 3)
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	e.Histogram("geo_latency_seconds", "Latency.", h.Snapshot(), L("query", "7"))
	out := e.String()

	for _, want := range []string{
		"# HELP geo_chunks_total Chunks processed.\n",
		"# TYPE geo_chunks_total counter\n",
		`geo_chunks_total{op="spatial\"restrict\\x"} 42` + "\n",
		"# TYPE geo_depth gauge\n",
		"geo_depth 3\n",
		"# TYPE geo_latency_seconds histogram\n",
		`geo_latency_seconds_bucket{query="7",le="0.1"} 1` + "\n",
		`geo_latency_seconds_bucket{query="7",le="1"} 2` + "\n",
		`geo_latency_seconds_bucket{query="7",le="+Inf"} 3` + "\n",
		`geo_latency_seconds_sum{query="7"} 2.55` + "\n",
		`geo_latency_seconds_count{query="7"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP must be omitted when empty.
	if strings.Contains(out, "# HELP geo_depth") {
		t.Errorf("unexpected HELP line for empty help:\n%s", out)
	}
	// Same-family samples must stay under a single TYPE header.
	if strings.Count(out, "# TYPE geo_chunks_total") != 1 {
		t.Errorf("duplicated TYPE header:\n%s", out)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(e *Exposition) {
		e.Counter("alpha_total", "First.", 1)
	}))
	r.Register(CollectorFunc(func(e *Exposition) {
		e.Counter("beta_total", "Second.", 2)
	}))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type: %q", ct)
	}
	body := rec.Body.String()
	ai := strings.Index(body, "alpha_total 1")
	bi := strings.Index(body, "beta_total 2")
	if ai < 0 || bi < 0 {
		t.Fatalf("missing samples in:\n%s", body)
	}
	if ai > bi {
		t.Errorf("collectors out of registration order:\n%s", body)
	}
}

func TestGoCollector(t *testing.T) {
	e := NewExposition()
	NewGoCollector().Collect(e)
	out := e.String()
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("go collector missing %s:\n%s", want, out)
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("a")
	l.Info("b", "k", 1)
	l.Warn("c")
	l.Error("d")
	if l.With("k", "v") != nil {
		t.Error("nil.With should stay nil")
	}
}

func TestLoggerOutput(t *testing.T) {
	var b strings.Builder
	l := NewTextLogger(&b, ParseLevel("debug")).With("query", 3)
	l.Info("query registered", "op", "stretch")
	out := b.String()
	for _, want := range []string{"query registered", "query=3", "op=stretch"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q in %q", want, out)
		}
	}
	// Level filtering: info logger drops debug records.
	b.Reset()
	NewTextLogger(&b, ParseLevel("info")).Debug("hidden")
	if b.Len() != 0 {
		t.Errorf("debug record leaked through info level: %q", b.String())
	}
}
