package query

import (
	"context"
	"math"
	"testing"

	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

// runQueryOverWorkload parses, validates, optionally optimizes, builds,
// and fully drains a query over a fresh synthetic workload.
func runQueryOverWorkload(t *testing.T, q string, optimize bool, w, h, sectors int) []*stream.Chunk {
	t.Helper()
	g := stream.NewGroup(context.Background())
	catalog, sources, _ := testCatalog(t, g, w, h, sectors)
	plan := mustParse(t, q)
	if err := Validate(plan, catalog); err != nil {
		t.Fatalf("Validate(%q): %v", q, err)
	}
	if optimize {
		var err error
		if plan, err = Optimize(plan, catalog); err != nil {
			t.Fatalf("Optimize(%q): %v", q, err)
		}
	}
	used := Bands(plan)
	for band, s := range sources {
		if used[band] == 0 {
			go stream.Drain(context.Background(), s) //nolint:errcheck
		}
	}
	out, _, err := Build(g, plan, sources)
	if err != nil {
		t.Fatalf("Build(%q): %v", q, err)
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	return chunks
}

func countValid(chunks []*stream.Chunk) int {
	n := 0
	for _, c := range chunks {
		c.ForEachPoint(func(_ geom.Point, v float64) {
			if !math.IsNaN(v) {
				n++
			}
		})
	}
	return n
}

func TestRotateQueryEndToEnd(t *testing.T) {
	chunks := runQueryOverWorkload(t, "rotate(vis, 90)", false, 21, 21, 1)
	if countValid(chunks) < 100 {
		t.Fatalf("rotate produced only %d valid points", countValid(chunks))
	}
}

func TestAggTQueryEndToEnd(t *testing.T) {
	chunks := runQueryOverWorkload(t, "agg_t(vis, max, 2)", true, 12, 10, 3)
	// One aggregated frame per sector.
	frames := 0
	for _, c := range chunks {
		if c.Kind == stream.KindGrid {
			frames++
		}
	}
	if frames != 3 {
		t.Fatalf("agg_t frames = %d, want 3", frames)
	}
}

func TestAggRQueryEndToEnd(t *testing.T) {
	chunks := runQueryOverWorkload(t,
		"agg_r(vis, count, rect(-121.5, 36.5, -120.5, 37.5))", true, 12, 10, 2)
	if len(chunks) != 2 {
		t.Fatalf("series length = %d, want 2", len(chunks))
	}
	for _, c := range chunks {
		if c.Kind != stream.KindPoints || len(c.Points) != 1 {
			t.Fatalf("series element = %+v", c)
		}
		if c.Points[0].V <= 0 {
			t.Fatalf("count = %g", c.Points[0].V)
		}
	}
}

func TestVSelectSupInfQueriesEndToEnd(t *testing.T) {
	for _, q := range []string{
		"vselect(vis, below(2000))",
		"sup(nir, vis)",
		"inf(nir, vis)",
		"threshold(vis, 500, 0, 1)",
		"clamp(vis, 100, 900)",
		"gammac(vis, 2.2, 0, 1023)",
		"gaussfilter(vis, 5, 1.2)",
		"gradient(vis)",
		"zoomout(zoomin(vis, 2), 2)",
		"stretch(vis, equalize, 0, 255)",
		"stretch(vis, gaussian, 0, 255)",
		"tselect(vis, since(0))",
		"tselect(vis, alltime())",
		"rselect(vis, disk(-121, 37, 0.5))",
	} {
		chunks := runQueryOverWorkload(t, q, true, 10, 8, 1)
		if countValid(chunks) == 0 {
			t.Fatalf("query %q produced no data", q)
		}
	}
}

func TestInterests(t *testing.T) {
	// Restrictions narrow interests; re-projection resets to the world;
	// multiple sources union.
	plan := mustParse(t, "rselect(nir, rect(0, 0, 10, 10)) + rselect(nir, rect(20, 20, 30, 30))")
	in := Interests(plan)
	if len(in) != 1 {
		t.Fatalf("interests = %v", in)
	}
	b := in["nir"]
	if !b.Contains(geom.V2(5, 5)) || !b.Contains(geom.V2(25, 25)) {
		t.Fatalf("union interest = %v", b)
	}

	plan = mustParse(t, `rselect(reproject(nir, "utm:10"), rect(500000, 4000000, 600000, 4100000))`)
	in = Interests(plan)
	if in["nir"] != geom.WorldRect() {
		t.Fatalf("reproject must reset interest, got %v", in["nir"])
	}

	// After optimization the interest narrows again (mapped restriction
	// below the reprojection).
	catalog := map[string]stream.Info{"nir": {Band: "nir", CRS: mustLatLon(), VMax: 1023}}
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	in = Interests(opt)
	if in["nir"] == geom.WorldRect() {
		t.Fatal("optimized interest must be narrowed by the mapped restriction")
	}
	if in["nir"].MinX < -180 || in["nir"].MaxX > 180 {
		t.Fatalf("optimized interest not in source coordinates: %v", in["nir"])
	}
}

func TestInterestsThroughCompose(t *testing.T) {
	plan := mustParse(t, "rselect(nir - vis, rect(1, 1, 2, 2))")
	in := Interests(plan)
	want := geom.R(1, 1, 2, 2)
	if in["nir"] != want || in["vis"] != want {
		t.Fatalf("interests = %v", in)
	}
}

func TestSyntaxErrorRendering(t *testing.T) {
	_, err := Parse("rselect(nir,, rect(0,0,1,1))", testBands)
	if err == nil {
		t.Fatal("double comma must fail")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Error() == "" || se.Pos <= 0 {
		t.Fatalf("unhelpful syntax error: %+v", se)
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokSlash; k++ {
		if k.String() == "" {
			t.Fatalf("empty token kind string for %d", int(k))
		}
	}
}

func TestFormatRendersTree(t *testing.T) {
	plan := mustParse(t, "rselect(scale(nir - vis, 1, 0), rect(0,0,1,1))")
	f := Format(plan)
	for _, want := range []string{"rselect", "map(scale", "compose(-)", "nir", "vis"} {
		if !containsStr(f, want) {
			t.Fatalf("Format missing %q:\n%s", want, f)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
