package query

import (
	"fmt"
	"strings"

	"geostreams/internal/core"
	"geostreams/internal/stream"
)

// InfoOf statically derives the output stream metadata of a plan over a
// catalog — the planning-time half of every operator's OutInfo, without
// building channels. It doubles as semantic validation: any operator
// precondition violation (mixed coordinate systems in a composition,
// progressive transform without metadata, ...) surfaces here before
// execution.
func InfoOf(n Node, catalog map[string]stream.Info) (stream.Info, error) {
	switch t := n.(type) {
	case *Source:
		in, ok := catalog[t.Band]
		if !ok {
			return stream.Info{}, fmt.Errorf("query: unknown band %q", t.Band)
		}
		return in, nil
	case *RestrictS:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.SpatialRestrict{Region: t.Region}.OutInfo(in)
	case *RestrictT:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.TemporalRestrict{Times: t.Times}.OutInfo(in)
	case *RestrictV:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.ValueRestrict{Values: t.Set}.OutInfo(in)
	case *MapFn:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return t.Op.OutInfo(in)
	case *Fused:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		op, err := fusedOp(t)
		if err != nil {
			return stream.Info{}, err
		}
		return op.OutInfo(in)
	case *StretchFn:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.Stretch{Kind: t.Kind, OutMin: t.Min, OutMax: t.Max}.OutInfo(in)
	case *Zoom:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		if t.Out {
			return core.ZoomOut{K: t.K}.OutInfo(in)
		}
		return core.ZoomIn{K: t.K}.OutInfo(in)
	case *Reproject:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		op := core.NewReproject(in.CRS, t.To, t.Interp, in.HasSectorMeta)
		return op.OutInfo(in)
	case *Rotate:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		if !in.HasSectorMeta {
			return stream.Info{}, fmt.Errorf("query: rotate needs sector metadata")
		}
		center := in.SectorGeom.Bounds().Center()
		aff, err := core.NewAffineTransform(core.Rotation(t.Degrees*degToRad, center), in.CRS, t.Interp(), true)
		if err != nil {
			return stream.Info{}, err
		}
		return aff.OutInfo(in)
	case *Filter:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		op, err := filterOp(t)
		if err != nil {
			return stream.Info{}, err
		}
		return op.OutInfo(in)
	case *ComposeOp:
		l, err := InfoOf(t.L, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		r, err := InfoOf(t.R, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.Compose{Gamma: t.Gamma}.OutInfo(l, r)
	case *AggT:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return (&core.TemporalAggregate{Fn: t.Fn, Window: t.Window}).OutInfo(in)
	case *AggR:
		in, err := InfoOf(t.In, catalog)
		if err != nil {
			return stream.Info{}, err
		}
		return core.RegionalAggregate{Fn: t.Fn, Region: t.Region}.OutInfo(in)
	}
	return stream.Info{}, fmt.Errorf("query: cannot derive info for %T", n)
}

// Validate type-checks a plan against a catalog without executing it.
func Validate(n Node, catalog map[string]stream.Info) error {
	_, err := InfoOf(n, catalog)
	return err
}

// Explain renders the plan tree with per-operator cost predictions from
// the §3 cost model: the operator, its output stream type, its space
// complexity class, and the predicted peak buffer.
func Explain(n Node, catalog map[string]stream.Info) (string, error) {
	return ExplainAnnotated(n, catalog, nil)
}

// ExplainAnnotated is Explain with a per-node annotation hook: whatever
// `annotate` returns for a node is appended to that node's line. The DSMS
// uses it to mark operators mounted on shared trunks with their signature
// digest. A nil annotate renders plain Explain output.
func ExplainAnnotated(n Node, catalog map[string]stream.Info, annotate func(Node) string) (string, error) {
	var b strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		info, err := InfoOf(n, catalog)
		if err != nil {
			return err
		}
		est := estimateFor(n, catalog)
		fmt.Fprintf(&b, "%s%-40s %s", strings.Repeat("  ", depth), n.Label(), info)
		if est != nil {
			fmt.Fprintf(&b, "  space=%s", est.Class)
			if est.BufferPoints > 0 {
				fmt.Fprintf(&b, " (~%d pts)", est.BufferPoints)
			}
		}
		if annotate != nil {
			if a := annotate(n); a != "" {
				b.WriteString("  ")
				b.WriteString(a)
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

// ExplainObserved renders the plan tree with the §3 cost-model prediction
// next to the live telemetry of the running pipeline: predicted vs observed
// peak buffer, chunk/point throughput, processing-latency percentiles, and
// the busy share of each operator's wall time. `stats` must be the slice
// returned by Build for the same plan.
func ExplainObserved(n Node, catalog map[string]stream.Info, stats []*stream.Stats) (string, error) {
	byNode := assignStats(n, stats)
	var b strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		info, err := InfoOf(n, catalog)
		if err != nil {
			return err
		}
		est := estimateFor(n, catalog)
		fmt.Fprintf(&b, "%s%-40s %s", strings.Repeat("  ", depth), n.Label(), info)
		if est != nil {
			fmt.Fprintf(&b, "  space=%s", est.Class)
			if est.BufferPoints > 0 {
				fmt.Fprintf(&b, " (predicted ~%d pts)", est.BufferPoints)
			}
		}
		if st := byNode[n]; st != nil {
			lat := st.LatencySnapshot()
			busy, idle := st.BusyTime().Seconds(), st.IdleTime().Seconds()
			share := 0.0
			if busy+idle > 0 {
				share = 100 * busy / (busy + idle)
			}
			fmt.Fprintf(&b, "\n%s  observed: peak_buffer=%d pts, in=%d chunks/%d pts, lat p50=%s p95=%s, busy=%.1f%%",
				strings.Repeat("  ", depth),
				st.PeakBufferedPoints(), st.ChunksIn.Load(), st.PointsIn.Load(),
				formatSeconds(lat.Quantile(0.5)), formatSeconds(lat.Quantile(0.95)), share)
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, 0); err != nil {
		return "", err
	}
	return b.String(), nil
}

// assignStats pairs plan nodes with Build's stats slice by replaying
// Build's construction order: a post-order walk in which shared subtrees
// (same Node pointer) are visited once and Source nodes produce no
// operator. A mismatch leaves the remaining nodes unmatched rather than
// failing — the rendering then simply omits the observed columns.
func assignStats(n Node, stats []*stream.Stats) map[Node]*stream.Stats {
	out := make(map[Node]*stream.Stats)
	seen := make(map[Node]bool)
	i := 0
	var walk func(n Node)
	walk = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children() {
			walk(c)
		}
		if _, isSource := n.(*Source); isSource {
			return
		}
		if i < len(stats) {
			out[n] = stats[i]
			i++
		}
	}
	walk(n)
	return out
}

// formatSeconds renders a duration in seconds with a unit fit for the
// magnitude (µs / ms / s).
func formatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// estimateFor maps a plan node to the cost model's prediction over its
// input stream.
func estimateFor(n Node, catalog map[string]stream.Info) *core.Estimate {
	kids := n.Children()
	if len(kids) == 0 {
		return nil
	}
	in, err := InfoOf(kids[0], catalog)
	if err != nil {
		return nil
	}
	var op any
	switch t := n.(type) {
	case *RestrictS:
		op = core.SpatialRestrict{Region: t.Region}
	case *RestrictT:
		op = core.TemporalRestrict{Times: t.Times}
	case *RestrictV:
		op = core.ValueRestrict{Values: t.Set}
	case *MapFn:
		op = t.Op
	case *Fused:
		fo, err := fusedOp(t)
		if err != nil {
			return nil
		}
		op = fo
	case *StretchFn:
		op = core.Stretch{Kind: t.Kind, OutMin: t.Min, OutMax: t.Max}
	case *Zoom:
		if t.Out {
			op = core.ZoomOut{K: t.K}
		} else {
			op = core.ZoomIn{K: t.K}
		}
	case *Reproject:
		op = core.NewReproject(in.CRS, t.To, t.Interp, in.HasSectorMeta)
	case *Rotate:
		op = &core.Resample{Progressive: in.HasSectorMeta}
	case *Filter:
		fo, err := filterOp(t)
		if err != nil {
			return nil
		}
		op = fo
	case *ComposeOp:
		op = core.Compose{Gamma: t.Gamma}
	case *AggT:
		op = &core.TemporalAggregate{Fn: t.Fn, Window: t.Window}
	case *AggR:
		op = core.RegionalAggregate{Fn: t.Fn, Region: t.Region}
	default:
		return nil
	}
	est := core.EstimateCost(op, in)
	return &est
}
