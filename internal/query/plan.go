package query

import (
	"fmt"

	"geostreams/internal/core"
	"geostreams/internal/exec"
	"geostreams/internal/stream"
)

// Build wires a logical plan into a running operator pipeline inside the
// group. `sources` supplies one physical stream per band. Subtrees shared
// between plan branches (same Node pointer — the ndvi macro, merged common
// subexpressions) are built once and teed; bands consumed more than once
// are teed likewise.
//
// It returns the output stream and the Stats instance of every operator in
// the pipeline, for the experiment harness and the DSMS status endpoint.
func Build(g *stream.Group, plan Node, sources map[string]*stream.Stream) (*stream.Stream, []*stream.Stats, error) {
	return BuildPartial(g, plan, sources, nil)
}

// BuildPartial is Build for a plan whose lower subtrees are already
// running elsewhere: `premounted` maps plan nodes to live streams (shared
// trunk taps), and the planner wires only the operators above them. It
// never descends below a premounted node — neither to build operators nor
// to demand band sources — so a query fully covered by premounted frontier
// roots passes sources == nil. The stats slice covers only the operators
// built here, in construction (post-)order.
func BuildPartial(g *stream.Group, plan Node, sources map[string]*stream.Stream, premounted map[Node]*stream.Stream) (*stream.Stream, []*stream.Stats, error) {
	p := &planner{
		g:     g,
		refs:  map[Node]int{},
		built: map[Node]*outlet{},
		pre:   premounted,
	}
	p.countRefs(plan, map[Node]bool{})
	p.refs[plan]++

	// Tee every band by the number of distinct Source nodes that read it:
	// a *shared* Source node is constructed once and teed at node level,
	// so it consumes only one copy regardless of its refcount. Sources
	// under premounted subtrees were never ref-counted and need nothing.
	p.sources = map[string]*outlet{}
	needs := map[string]int{}
	for n := range p.refs {
		if _, ok := p.pre[n]; ok {
			continue
		}
		if s, ok := n.(*Source); ok {
			needs[s.Band]++
		}
	}
	for band, need := range needs {
		src, ok := sources[band]
		if !ok {
			return nil, nil, fmt.Errorf("query: no source stream for band %q", band)
		}
		if need == 1 {
			p.sources[band] = &outlet{streams: []*stream.Stream{src}}
		} else {
			p.sources[band] = &outlet{streams: stream.Tee(g, src, need)}
		}
	}

	out, err := p.take(plan)
	if err != nil {
		return nil, nil, err
	}
	return out, p.stats, nil
}

// outlet hands out the teed copies of one built node.
type outlet struct {
	streams []*stream.Stream
	next    int
}

func (o *outlet) take() (*stream.Stream, error) {
	if o.next >= len(o.streams) {
		return nil, fmt.Errorf("query: internal: outlet over-consumed")
	}
	s := o.streams[o.next]
	o.next++
	return s, nil
}

type planner struct {
	g       *stream.Group
	refs    map[Node]int
	built   map[Node]*outlet
	sources map[string]*outlet
	pre     map[Node]*stream.Stream
	stats   []*stream.Stats
}

// countRefs counts how many parents each unique node has. It does not
// descend below premounted nodes: their subtrees run elsewhere.
func (p *planner) countRefs(n Node, seen map[Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	if _, ok := p.pre[n]; ok {
		return
	}
	for _, c := range n.Children() {
		p.refs[c]++
		p.countRefs(c, seen)
	}
}

// take returns one consumable copy of the node's physical stream,
// constructing the operator on first demand.
func (p *planner) take(n Node) (*stream.Stream, error) {
	if o, ok := p.built[n]; ok {
		return o.take()
	}
	out, err := p.construct(n)
	if err != nil {
		return nil, err
	}
	o := &outlet{streams: []*stream.Stream{out}}
	if c := p.refs[n]; c > 1 {
		o = &outlet{streams: stream.Tee(p.g, out, c)}
	}
	p.built[n] = o
	return o.take()
}

// construct builds the physical operator for one plan node: premounted
// nodes hand back their live stream, sources draw from the band outlets,
// and everything else goes through BuildOp over its built inputs.
func (p *planner) construct(n Node) (*stream.Stream, error) {
	if s, ok := p.pre[n]; ok {
		return s, nil
	}
	if t, ok := n.(*Source); ok {
		o, ok := p.sources[t.Band]
		if !ok {
			return nil, fmt.Errorf("query: no source stream for band %q", t.Band)
		}
		return o.take()
	}
	kids := n.Children()
	ins := make([]*stream.Stream, len(kids))
	for i, c := range kids {
		in, err := p.take(c)
		if err != nil {
			return nil, err
		}
		ins[i] = in
	}
	out, st, err := BuildOp(p.g, n, ins)
	if err != nil {
		return nil, err
	}
	p.stats = append(p.stats, st)
	return out, nil
}

// BuildOp wires the physical operator of a single non-source plan node
// onto already-built input streams (one per child, in Children() order),
// returning the output stream and the operator's stats. It is the shared
// construction kernel of the planner and of the shared-trunk DAG in
// internal/share.
func BuildOp(g *stream.Group, n Node, ins []*stream.Stream) (*stream.Stream, *stream.Stats, error) {
	want := len(n.Children())
	if len(ins) != want {
		return nil, nil, fmt.Errorf("query: %s needs %d input stream(s), got %d", n.Label(), want, len(ins))
	}
	switch t := n.(type) {
	case *Source:
		return nil, nil, fmt.Errorf("query: BuildOp cannot build a source node (band %q)", t.Band)
	case *RestrictS:
		return stream.Apply(g, core.SpatialRestrict{Region: t.Region}, ins[0])
	case *RestrictT:
		return stream.Apply(g, core.TemporalRestrict{Times: t.Times}, ins[0])
	case *RestrictV:
		return stream.Apply(g, core.ValueRestrict{Values: t.Set}, ins[0])
	case *MapFn:
		return stream.Apply(g, t.Op, ins[0])
	case *Fused:
		op, err := fusedOp(t)
		if err != nil {
			return nil, nil, err
		}
		exec.CountFusion(len(t.Stages))
		return stream.Apply(g, op, ins[0])
	case *StretchFn:
		return stream.Apply(g, core.Stretch{Kind: t.Kind, OutMin: t.Min, OutMax: t.Max}, ins[0])
	case *Zoom:
		if t.Out {
			return stream.Apply(g, core.ZoomOut{K: t.K}, ins[0])
		}
		return stream.Apply(g, core.ZoomIn{K: t.K}, ins[0])
	case *Reproject:
		// Progressive emission whenever the stream carries the §3.2
		// sector metadata; otherwise the operator must block per sector.
		op := core.NewReproject(ins[0].Info.CRS, t.To, t.Interp, ins[0].Info.HasSectorMeta)
		return stream.Apply(g, op, ins[0])
	case *Rotate:
		if !ins[0].Info.HasSectorMeta {
			return nil, nil, fmt.Errorf("query: rotate needs sector metadata to locate the sector center")
		}
		center := ins[0].Info.SectorGeom.Bounds().Center()
		aff, err := core.NewAffineTransform(
			core.Rotation(t.Degrees*degToRad, center), ins[0].Info.CRS, t.Interp(), true)
		if err != nil {
			return nil, nil, err
		}
		return stream.Apply(g, aff, ins[0])
	case *Filter:
		op, err := filterOp(t)
		if err != nil {
			return nil, nil, err
		}
		return stream.Apply(g, op, ins[0])
	case *ComposeOp:
		return stream.Apply2(g, core.Compose{Gamma: t.Gamma}, ins[0], ins[1])
	case *AggT:
		return stream.Apply(g, &core.TemporalAggregate{Fn: t.Fn, Window: t.Window}, ins[0])
	case *AggR:
		return stream.Apply(g, core.RegionalAggregate{Fn: t.Fn, Region: t.Region}, ins[0])
	}
	return nil, nil, fmt.Errorf("query: cannot build plan node %T", n)
}

// filterOp instantiates the physical operator of a Filter node.
func filterOp(t *Filter) (stream.Operator, error) {
	switch t.Kind {
	case "box":
		return core.NewBoxFilter(t.N)
	case "gauss":
		return core.NewGaussianFilter(t.N, t.Sigma)
	case "gradient":
		return core.Gradient{}, nil
	}
	return nil, fmt.Errorf("query: unknown filter kind %q", t.Kind)
}

const degToRad = 3.14159265358979323846 / 180

// Interp picks the resampling for rotations (always bilinear; rotations
// have no parser-level interp parameter).
func (n *Rotate) Interp() core.InterpKind { return core.Bilinear }
