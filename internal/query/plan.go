package query

import (
	"fmt"

	"geostreams/internal/core"
	"geostreams/internal/exec"
	"geostreams/internal/stream"
)

// Build wires a logical plan into a running operator pipeline inside the
// group. `sources` supplies one physical stream per band. Subtrees shared
// between plan branches (same Node pointer — the ndvi macro, merged common
// subexpressions) are built once and teed; bands consumed more than once
// are teed likewise.
//
// It returns the output stream and the Stats instance of every operator in
// the pipeline, for the experiment harness and the DSMS status endpoint.
func Build(g *stream.Group, plan Node, sources map[string]*stream.Stream) (*stream.Stream, []*stream.Stats, error) {
	p := &planner{
		g:     g,
		refs:  map[Node]int{},
		built: map[Node]*outlet{},
	}
	p.countRefs(plan, map[Node]bool{})
	p.refs[plan]++

	// Tee every band by the number of distinct Source nodes that read it:
	// a *shared* Source node is constructed once and teed at node level,
	// so it consumes only one copy regardless of its refcount.
	p.sources = map[string]*outlet{}
	needs := map[string]int{}
	for n := range p.refs {
		if s, ok := n.(*Source); ok {
			needs[s.Band]++
		}
	}
	for band, need := range needs {
		src, ok := sources[band]
		if !ok {
			return nil, nil, fmt.Errorf("query: no source stream for band %q", band)
		}
		if need == 1 {
			p.sources[band] = &outlet{streams: []*stream.Stream{src}}
		} else {
			p.sources[band] = &outlet{streams: stream.Tee(g, src, need)}
		}
	}

	out, err := p.take(plan)
	if err != nil {
		return nil, nil, err
	}
	return out, p.stats, nil
}

// outlet hands out the teed copies of one built node.
type outlet struct {
	streams []*stream.Stream
	next    int
}

func (o *outlet) take() (*stream.Stream, error) {
	if o.next >= len(o.streams) {
		return nil, fmt.Errorf("query: internal: outlet over-consumed")
	}
	s := o.streams[o.next]
	o.next++
	return s, nil
}

type planner struct {
	g       *stream.Group
	refs    map[Node]int
	built   map[Node]*outlet
	sources map[string]*outlet
	stats   []*stream.Stats
}

// countRefs counts how many parents each unique node has.
func (p *planner) countRefs(n Node, seen map[Node]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	for _, c := range n.Children() {
		p.refs[c]++
		p.countRefs(c, seen)
	}
}

// take returns one consumable copy of the node's physical stream,
// constructing the operator on first demand.
func (p *planner) take(n Node) (*stream.Stream, error) {
	if o, ok := p.built[n]; ok {
		return o.take()
	}
	out, err := p.construct(n)
	if err != nil {
		return nil, err
	}
	o := &outlet{streams: []*stream.Stream{out}}
	if c := p.refs[n]; c > 1 {
		o = &outlet{streams: stream.Tee(p.g, out, c)}
	}
	p.built[n] = o
	return o.take()
}

// apply wires a unary operator and records its stats.
func (p *planner) apply(op stream.Operator, in *stream.Stream) (*stream.Stream, error) {
	out, st, err := stream.Apply(p.g, op, in)
	if err != nil {
		return nil, err
	}
	p.stats = append(p.stats, st)
	return out, nil
}

// construct builds the physical operator for one plan node.
func (p *planner) construct(n Node) (*stream.Stream, error) {
	switch t := n.(type) {
	case *Source:
		o, ok := p.sources[t.Band]
		if !ok {
			return nil, fmt.Errorf("query: no source stream for band %q", t.Band)
		}
		return o.take()
	case *RestrictS:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(core.SpatialRestrict{Region: t.Region}, in)
	case *RestrictT:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(core.TemporalRestrict{Times: t.Times}, in)
	case *RestrictV:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(core.ValueRestrict{Values: t.Set}, in)
	case *MapFn:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(t.Op, in)
	case *Fused:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		op, err := fusedOp(t)
		if err != nil {
			return nil, err
		}
		exec.CountFusion(len(t.Stages))
		return p.apply(op, in)
	case *StretchFn:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(core.Stretch{Kind: t.Kind, OutMin: t.Min, OutMax: t.Max}, in)
	case *Zoom:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		if t.Out {
			return p.apply(core.ZoomOut{K: t.K}, in)
		}
		return p.apply(core.ZoomIn{K: t.K}, in)
	case *Reproject:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		// Progressive emission whenever the stream carries the §3.2
		// sector metadata; otherwise the operator must block per sector.
		op := core.NewReproject(in.Info.CRS, t.To, t.Interp, in.Info.HasSectorMeta)
		return p.apply(op, in)
	case *Rotate:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		if !in.Info.HasSectorMeta {
			return nil, fmt.Errorf("query: rotate needs sector metadata to locate the sector center")
		}
		center := in.Info.SectorGeom.Bounds().Center()
		aff, err := core.NewAffineTransform(
			core.Rotation(t.Degrees*degToRad, center), in.Info.CRS, t.Interp(), true)
		if err != nil {
			return nil, err
		}
		return p.apply(aff, in)
	case *Filter:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		op, err := filterOp(t)
		if err != nil {
			return nil, err
		}
		return p.apply(op, in)
	case *ComposeOp:
		l, err := p.take(t.L)
		if err != nil {
			return nil, err
		}
		r, err := p.take(t.R)
		if err != nil {
			return nil, err
		}
		out, st, err := stream.Apply2(p.g, core.Compose{Gamma: t.Gamma}, l, r)
		if err != nil {
			return nil, err
		}
		p.stats = append(p.stats, st)
		return out, nil
	case *AggT:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(&core.TemporalAggregate{Fn: t.Fn, Window: t.Window}, in)
	case *AggR:
		in, err := p.take(t.In)
		if err != nil {
			return nil, err
		}
		return p.apply(core.RegionalAggregate{Fn: t.Fn, Region: t.Region}, in)
	}
	return nil, fmt.Errorf("query: cannot build plan node %T", n)
}

// filterOp instantiates the physical operator of a Filter node.
func filterOp(t *Filter) (stream.Operator, error) {
	switch t.Kind {
	case "box":
		return core.NewBoxFilter(t.N)
	case "gauss":
		return core.NewGaussianFilter(t.N, t.Sigma)
	case "gradient":
		return core.Gradient{}, nil
	}
	return nil, fmt.Errorf("query: unknown filter kind %q", t.Kind)
}

const degToRad = 3.14159265358979323846 / 180

// Interp picks the resampling for rotations (always bilinear; rotations
// have no parser-level interp parameter).
func (n *Rotate) Interp() core.InterpKind { return core.Bilinear }
