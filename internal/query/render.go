package query

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"geostreams/internal/geom"
	"geostreams/internal/valueset"
)

// ErrNotRenderable marks a plan with no surface-syntax rendering: nodes
// only the optimizer or fusion pass produces (Fused, FuncRegion-restricted
// plans, merged value sets), regions whose constructor is lossy (disk
// lowers to a polynomial constraint), or non-finite numeric parameters the
// language has no literal for.
var ErrNotRenderable = errors.New("query: plan has no surface-syntax rendering")

// Render emits canonical query-language text for a parser-producible plan:
// Parse(Render(Parse(q))) yields a plan structurally equal to Parse(q)
// (compare with Format; pointer sharing inside the AST is not preserved).
// The fuzz harness relies on this round trip.
func Render(n Node) (string, error) {
	switch t := n.(type) {
	case *Source:
		return t.Band, nil
	case *RestrictS:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		r, err := regionText(t.Region)
		if err != nil {
			return "", err
		}
		return "rselect(" + in + ", " + r + ")", nil
	case *RestrictT:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		ts, err := timesText(t.Times)
		if err != nil {
			return "", err
		}
		return "tselect(" + in + ", " + ts + ")", nil
	case *RestrictV:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		vs, err := vsetText(t.Set)
		if err != nil {
			return "", err
		}
		return "vselect(" + in + ", " + vs + ")", nil
	case *MapFn:
		// Desc is "name(args...)"; splice the input as the first argument.
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		i := strings.IndexByte(t.Desc, '(')
		if i < 0 || !strings.HasSuffix(t.Desc, ")") {
			return "", fmt.Errorf("%w: map desc %q", ErrNotRenderable, t.Desc)
		}
		args := t.Desc[i+1 : len(t.Desc)-1]
		if args == "" {
			return t.Desc[:i+1] + in + ")", nil
		}
		return t.Desc[:i+1] + in + ", " + args + ")", nil
	case *StretchFn:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		lo, err := num(t.Min)
		if err != nil {
			return "", err
		}
		hi, err := num(t.Max)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("stretch(%s, %s, %s, %s)", in, t.Kind, lo, hi), nil
	case *Zoom:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		name := "zoomin"
		if t.Out {
			name = "zoomout"
		}
		return fmt.Sprintf("%s(%s, %d)", name, in, t.K), nil
	case *Reproject:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("reproject(%s, %q, %s)", in, t.To.Name(), t.Interp), nil
	case *Rotate:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		deg, err := num(t.Degrees)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("rotate(%s, %s)", in, deg), nil
	case *Filter:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		switch t.Kind {
		case "box":
			return fmt.Sprintf("boxfilter(%s, %d)", in, t.N), nil
		case "gauss":
			sig, err := num(t.Sigma)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("gaussfilter(%s, %d, %s)", in, t.N, sig), nil
		case "gradient":
			return fmt.Sprintf("gradient(%s)", in), nil
		}
		return "", fmt.Errorf("%w: filter kind %q", ErrNotRenderable, t.Kind)
	case *ComposeOp:
		l, err := Render(t.L)
		if err != nil {
			return "", err
		}
		r, err := Render(t.R)
		if err != nil {
			return "", err
		}
		switch t.Gamma {
		case valueset.Add:
			return "(" + l + " + " + r + ")", nil
		case valueset.Sub:
			return "(" + l + " - " + r + ")", nil
		case valueset.Mul:
			return "(" + l + " * " + r + ")", nil
		case valueset.Div:
			return "(" + l + " / " + r + ")", nil
		case valueset.Sup:
			return "sup(" + l + ", " + r + ")", nil
		case valueset.Inf:
			return "inf(" + l + ", " + r + ")", nil
		}
		return "", fmt.Errorf("%w: composition %v", ErrNotRenderable, t.Gamma)
	case *AggT:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("agg_t(%s, %s, %d)", in, t.Fn, t.Window), nil
	case *AggR:
		in, err := Render(t.In)
		if err != nil {
			return "", err
		}
		r, err := regionText(t.Region)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("agg_r(%s, %s, %s)", in, t.Fn, r), nil
	}
	return "", fmt.Errorf("%w: %T", ErrNotRenderable, n)
}

// num renders a float as a lexer-accepted literal; the language has no
// literal for NaN or infinities.
func num(v float64) (string, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "", fmt.Errorf("%w: non-finite number %g", ErrNotRenderable, v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64), nil
}

func nums(vs ...float64) ([]string, error) {
	out := make([]string, len(vs))
	for i, v := range vs {
		s, err := num(v)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func regionText(r geom.Region) (string, error) {
	switch t := r.(type) {
	case geom.RectRegion:
		parts, err := nums(t.Rect.MinX, t.Rect.MinY, t.Rect.MaxX, t.Rect.MaxY)
		if err != nil {
			return "", err
		}
		return "rect(" + strings.Join(parts, ", ") + ")", nil
	case geom.WorldRegion:
		return "world()", nil
	case *geom.PolygonRegion:
		// The polygon's own String prints space-separated pairs; the
		// parser wants a flat comma-separated coordinate list.
		verts := t.Vertices()
		parts := make([]string, 0, 2*len(verts))
		for _, v := range verts {
			p, err := nums(v.X, v.Y)
			if err != nil {
				return "", err
			}
			parts = append(parts, p...)
		}
		return "polygon(" + strings.Join(parts, ", ") + ")", nil
	}
	return "", fmt.Errorf("%w: region %s", ErrNotRenderable, r)
}

func timesText(ts geom.TimeSet) (string, error) {
	switch ts.(type) {
	case geom.Interval, *geom.Instants, geom.Recurring, geom.AllTime:
		// Their String forms are exactly the constructor syntax.
		return ts.String(), nil
	}
	return "", fmt.Errorf("%w: time set %s", ErrNotRenderable, ts)
}

func vsetText(vs valueset.Set) (string, error) {
	switch t := vs.(type) {
	case valueset.Range:
		parts, err := nums(t.Min, t.Max)
		if err != nil {
			return "", err
		}
		return "range(" + strings.Join(parts, ", ") + ")", nil
	case valueset.Above:
		s, err := num(t.Threshold)
		if err != nil {
			return "", err
		}
		return "above(" + s + ")", nil
	case valueset.Below:
		s, err := num(t.Threshold)
		if err != nil {
			return "", err
		}
		return "below(" + s + ")", nil
	case valueset.Finite:
		return "finite()", nil
	}
	return "", fmt.Errorf("%w: value set %s", ErrNotRenderable, vs)
}
