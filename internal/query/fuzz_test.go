package query

import (
	"errors"
	"testing"
)

// FuzzParse asserts two invariants over arbitrary query text:
//
//  1. The parser never panics — it returns a plan or a *SyntaxError, even
//     for adversarial input (deep nesting, truncated calls, weird floats).
//  2. Accepted plans round-trip: Render(Parse(q)) reparses to a plan with
//     the same structure. Plans the surface language cannot express
//     (non-finite folded constants, for instance) return ErrNotRenderable
//     and are exempt from the round trip, never from the no-panic rule.
//
// Seed corpus lives in testdata/fuzz/FuzzParse, drawn from the examples.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"ndvi(nir, vis)",
		"rselect(vis, rect(-121.6, 36.4, -120.4, 37.6))",
		"stretch(rselect(ndvi(nir, vis), rect(-121.6, 36.4, -120.4, 37.6)), linear, 0, 255)",
		"vselect(ndvi(nir, vis), above(0.4))",
		"agg_r(ndvi(nir, vis), mean, rect(-121.5, 36.5, -120.5, 37.5))",
		"zoomin(rselect(vis, rect(-121.2, 36.8, -120.8, 37.2)), 2)",
		"zoomout(vis, 4)",
		"stretch(ir, linear, 0, 255)",
		"agg_t(tselect(nir, interval(0, 100)), max, 4)",
		"gaussfilter(boxfilter(vis, 3), 5, 1.5)",
		"sup(nir, inf(vis, ir))",
		"reproject(gradient(vis), \"utm:10n\", bilinear)",
		"rotate(rselect(vis, world()), 45)",
		"vselect(scale(nir, 2, 1) / clamp(vis, 0, 1), range(0, 500))",
		"tselect(vis, recurring(0, 10, 100))",
		"tselect(vis, instants(1, 2, 3))",
		"rselect(vis, polygon(0, 0, 1, 0, 1, 1))",
		"threshold(gammac(vis, 2.2, 0, 255), 0.5, 0, 1)",
		"(nir - vis) / (nir + vis)",
		"((1 / 0) + vis)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	bands := map[string]bool{"nir": true, "vis": true, "ir": true}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src, bands)
		if err != nil {
			return
		}
		txt, err := Render(n)
		if errors.Is(err, ErrNotRenderable) {
			return
		}
		if err != nil {
			t.Fatalf("Render(%q): %v", src, err)
		}
		n2, err := Parse(txt, bands)
		if err != nil {
			t.Fatalf("rendered text does not reparse:\n  src:      %q\n  rendered: %q\n  err: %v", src, txt, err)
		}
		if Format(n) != Format(n2) {
			t.Fatalf("round trip changed the plan:\n  src:      %q\n  rendered: %q\n  before:\n%s\n  after:\n%s",
				src, txt, Format(n), Format(n2))
		}
	})
}
