// Package query implements the GeoStreams query model as a small textual
// language over the §3 algebra: a lexer/parser producing typed logical
// plans, the §3.4 rewrite rules (restriction merging and push-down,
// including inverse-CRS region mapping below re-projections), a planner
// that wires plans into channel-connected operator pipelines, and EXPLAIN
// rendering with the cost model's predictions.
//
// The surface syntax is functional, mirroring the algebra. The paper's
// running example query
//
//	((f_val((G1 − G2) ÷ (G2 + G1))) ∘ f_UTM) |R
//
// is written
//
//	rselect(
//	  reproject(
//	    stretch((nir - vis) / (nir + vis), linear, 0, 255),
//	    "utm:10"),
//	  rect(550000, 4100000, 650000, 4300000))
//
// with the region interpreted in the stream's current CRS at that point in
// the plan (UTM here, exactly as in the paper's discussion).
package query

import (
	"fmt"
	"strings"

	"geostreams/internal/coord"
	"geostreams/internal/core"
	"geostreams/internal/geom"
	"geostreams/internal/valueset"
)

// Node is a typed logical plan node. The algebra is closed, so every node
// denotes a GeoStream.
type Node interface {
	// Children returns the input plans.
	Children() []Node
	// Label names the operator with its parameters for EXPLAIN output.
	Label() string
}

// Source reads a named band stream from the registered source set.
type Source struct {
	Band string
}

func (s *Source) Children() []Node { return nil }
func (s *Source) Label() string    { return s.Band }

// RestrictS is the spatial restriction G|R. The region's coordinates are
// interpreted in the CRS of the input stream at this plan position.
type RestrictS struct {
	In     Node
	Region geom.Region
}

func (n *RestrictS) Children() []Node { return []Node{n.In} }
func (n *RestrictS) Label() string    { return "rselect(" + n.Region.String() + ")" }

// RestrictT is the temporal restriction G|T.
type RestrictT struct {
	In    Node
	Times geom.TimeSet
}

func (n *RestrictT) Children() []Node { return []Node{n.In} }
func (n *RestrictT) Label() string    { return "tselect(" + n.Times.String() + ")" }

// RestrictV is the value restriction G|V.
type RestrictV struct {
	In  Node
	Set valueset.Set
}

func (n *RestrictV) Children() []Node { return []Node{n.In} }
func (n *RestrictV) Label() string    { return "vselect(" + n.Set.String() + ")" }

// MapFn is a point-wise value transform f_val ∘ G.
type MapFn struct {
	In   Node
	Op   core.ValueTransform
	Desc string
}

func (n *MapFn) Children() []Node { return []Node{n.In} }
func (n *MapFn) Label() string    { return "map(" + n.Desc + ")" }

// StretchFn is the frame-buffered scaling transform.
type StretchFn struct {
	In       Node
	Kind     core.StretchKind
	Min, Max float64
}

func (n *StretchFn) Children() []Node { return []Node{n.In} }
func (n *StretchFn) Label() string {
	return fmt.Sprintf("stretch(%s, %g, %g)", n.Kind, n.Min, n.Max)
}

// Zoom changes the lattice resolution by an integer factor.
type Zoom struct {
	In  Node
	K   int
	Out bool // true: zoom out (decrease resolution)
}

func (n *Zoom) Children() []Node { return []Node{n.In} }
func (n *Zoom) Label() string {
	if n.Out {
		return fmt.Sprintf("zoomout(%d)", n.K)
	}
	return fmt.Sprintf("zoomin(%d)", n.K)
}

// Reproject re-projects the stream into a new coordinate system.
type Reproject struct {
	In     Node
	To     coord.CRS
	Interp core.InterpKind
}

func (n *Reproject) Children() []Node { return []Node{n.In} }
func (n *Reproject) Label() string {
	return fmt.Sprintf("reproject(%s, %s)", n.To.Name(), n.Interp)
}

// Rotate applies an affine rotation about the sector center.
type Rotate struct {
	In      Node
	Degrees float64
}

func (n *Rotate) Children() []Node { return []Node{n.In} }
func (n *Rotate) Label() string    { return fmt.Sprintf("rotate(%g)", n.Degrees) }

// Filter is a neighborhood operation (convolution or gradient) over the
// lattice.
type Filter struct {
	In    Node
	Kind  string // "box", "gauss", "gradient"
	N     int
	Sigma float64
}

func (n *Filter) Children() []Node { return []Node{n.In} }
func (n *Filter) Label() string {
	switch n.Kind {
	case "box":
		return fmt.Sprintf("boxfilter(%d)", n.N)
	case "gauss":
		return fmt.Sprintf("gaussfilter(%d, %g)", n.N, n.Sigma)
	}
	return "gradient()"
}

// ComposeOp is the binary composition G1 γ G2.
type ComposeOp struct {
	L, R  Node
	Gamma valueset.Gamma
}

func (n *ComposeOp) Children() []Node { return []Node{n.L, n.R} }
func (n *ComposeOp) Label() string    { return "compose(" + n.Gamma.String() + ")" }

// AggT is the temporal sliding-window aggregate (the [27] extension).
type AggT struct {
	In     Node
	Fn     core.AggFunc
	Window int
}

func (n *AggT) Children() []Node { return []Node{n.In} }
func (n *AggT) Label() string    { return fmt.Sprintf("agg_t(%s, %d)", n.Fn, n.Window) }

// AggR is the regional (time-series) aggregate.
type AggR struct {
	In     Node
	Fn     core.AggFunc
	Region geom.Region
}

func (n *AggR) Children() []Node { return []Node{n.In} }
func (n *AggR) Label() string    { return fmt.Sprintf("agg_r(%s, %s)", n.Fn, n.Region) }

// Format renders a plan as an indented tree.
func Format(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Interests computes, per source band, a conservative bounding rectangle
// of the data the plan can ever use — the region the DSMS registers in its
// shared cascade-tree restriction stage (§4). The rectangle is the
// intersection of the spatial restrictions on the path from each source to
// the root, reset to the whole plane whenever the path crosses a
// coordinate-system change (the optimizer places mapped restrictions below
// those, so the reset costs nothing on optimized plans).
func Interests(n Node) map[string]geom.Rect {
	out := map[string]geom.Rect{}
	var walk func(n Node, cur geom.Rect)
	walk = func(n Node, cur geom.Rect) {
		switch t := n.(type) {
		case *Source:
			if prev, ok := out[t.Band]; ok {
				out[t.Band] = prev.Union(cur)
			} else {
				out[t.Band] = cur
			}
		case *RestrictS:
			walk(t.In, cur.Intersect(t.Region.Bounds()))
		case *Reproject:
			walk(t.In, geom.WorldRect())
		case *Rotate:
			walk(t.In, geom.WorldRect())
		default:
			for _, c := range n.Children() {
				walk(c, cur)
			}
		}
	}
	walk(n, geom.WorldRect())
	return out
}

// Bands returns the set of source bands a plan reads, with multiplicity.
func Bands(n Node) map[string]int {
	out := map[string]int{}
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Source); ok {
			out[s.Band]++
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
