package query

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
)

// runFingerprint executes a plan (optionally rewritten) over the standard
// deterministic workload and returns its bit-exact output fingerprint.
func runFingerprint(t *testing.T, plan Node, rewrite func(Node, map[string]stream.Info) (Node, error)) (Fingerprint, error) {
	t.Helper()
	g := stream.NewGroup(context.Background())
	scene := sat.DefaultScene(99)
	im, err := sat.NewLatLonImager(geom.R(-122, 36, -120, 38), 20, 14, scene,
		[]string{"nir", "vis"}, stream.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	sources, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]stream.Info{
		"nir": im.Info(im.Bands[0]),
		"vis": im.Info(im.Bands[1]),
	}
	if rewrite != nil {
		if plan, err = rewrite(plan, catalog); err != nil {
			return Fingerprint{}, err
		}
	}
	if err := Validate(plan, catalog); err != nil {
		return Fingerprint{}, err
	}
	used := Bands(plan)
	for band, s := range sources {
		if used[band] == 0 {
			go stream.Drain(context.Background(), s) //nolint:errcheck
		}
	}
	out, _, err := Build(g, plan, sources)
	if err != nil {
		return Fingerprint{}, err
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		return Fingerprint{}, err
	}
	if err := g.Wait(); err != nil {
		return Fingerprint{}, err
	}
	return FingerprintChunks(chunks), nil
}

// TestRewriteEquivalenceBitExact is the algebraic half of the equivalence
// harness: for random plans, the full rewrite chain (Optimize then Fuse)
// produces the bit-identical fingerprint of the naive plan — same points,
// same value bits, same punctuation. Unlike the tolerance-based optimizer
// property test, this admits no epsilon: the §3.4 rewrites and point-wise
// fusion reorder operators, never arithmetic.
func TestRewriteEquivalenceBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20060328))
	trials := 60
	if testing.Short() {
		trials = 8
	}
	full := func(n Node, catalog map[string]stream.Info) (Node, error) {
		opt, err := Optimize(n, catalog)
		if err != nil {
			return nil, err
		}
		return Fuse(opt), nil
	}
	for i := 0; i < trials; i++ {
		q := RandPlanText(rng, false)
		naive, err := runFingerprint(t, mustParse(t, q), nil)
		if err != nil {
			t.Fatalf("trial %d: naive run of %q: %v", i, q, err)
		}
		rewritten, err := runFingerprint(t, mustParse(t, q), full)
		if err != nil {
			t.Fatalf("trial %d: rewritten run of %q: %v", i, q, err)
		}
		if d := naive.Diff(rewritten, "naive", "optimized+fused"); d != "" {
			t.Fatalf("trial %d: %q\n%s", i, q, d)
		}
	}
}

// TestSignatureEqualPlansBitExact: plans the signature normalizer deems
// equal (commutative operand swaps, at any nesting level) really do produce
// bit-identical output — the safety condition for mounting both on one
// shared trunk.
func TestSignatureEqualPlansBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	swaps := [][2]string{
		{"nir + vis", "vis + nir"},
		{"nir * vis", "vis * nir"},
		{"sup(nir, vis)", "sup(vis, nir)"},
		{"inf(nir, vis)", "inf(vis, nir)"},
		{"scale((nir + vis) * (nir - vis), 2, 1)", "scale((nir - vis) * (nir + vis), 2, 1)"},
	}
	// Plus generated pairs: wrap a commutative composition both ways in the
	// same random unary pipeline.
	for i := 0; i < 10; i++ {
		suffix := RandPlanText(rng, false)
		ab := strings.Replace(suffix, "nir", "(nir + vis)", 1)
		ba := strings.Replace(suffix, "nir", "(vis + nir)", 1)
		if ab != ba { // suffix contained "nir"; otherwise skip
			swaps = append(swaps, [2]string{ab, ba})
		}
	}
	for i, pair := range swaps {
		a, b := mustParse(t, pair[0]), mustParse(t, pair[1])
		if Signature(a) != Signature(b) {
			t.Fatalf("pair %d: %q and %q should have equal signatures", i, pair[0], pair[1])
		}
		fa, err := runFingerprint(t, a, nil)
		if err != nil {
			t.Fatalf("pair %d: %q: %v", i, pair[0], err)
		}
		fb, err := runFingerprint(t, b, nil)
		if err != nil {
			t.Fatalf("pair %d: %q: %v", i, pair[1], err)
		}
		if d := fa.Diff(fb, pair[0], pair[1]); d != "" {
			t.Fatalf("pair %d: signature-equal plans diverge:\n%s", i, d)
		}
	}
}
