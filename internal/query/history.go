package query

import "geostreams/internal/geom"

// HistoryStart reports whether the plan carries a temporal restriction
// (any RestrictT node) and, if so, the earliest sector timestamp those
// restrictions can reference. A server with a historical store uses this
// to lower G|T over the past into a store scan from the first retained
// sector >= start, spliced into the live stream; geom.EarliestStart
// means "from the beginning of retained history".
func HistoryStart(n Node) (start geom.Timestamp, restricted bool) {
	start = geom.OpenEnd
	var walk func(Node)
	walk = func(n Node) {
		if n == nil {
			return
		}
		if t, ok := n.(*RestrictT); ok {
			restricted = true
			if e := geom.EarliestTime(t.Times); e < start {
				start = e
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if !restricted {
		return 0, false
	}
	return start, true
}
