package query

import (
	"fmt"
	"strings"

	"geostreams/internal/core"
)

// Fused is a maximal chain of adjacent point-wise plan stages — value
// transforms (MapFn) and value restrictions (RestrictV) — collapsed into
// one FusedPointwise physical operator. Stages holds the original nodes in
// application order (innermost first), so EXPLAIN keeps the chain legible
// and the planner rebuilds each constituent operator verbatim.
type Fused struct {
	In     Node
	Stages []Node
}

func (n *Fused) Children() []Node { return []Node{n.In} }

func (n *Fused) Label() string {
	parts := make([]string, len(n.Stages))
	for i, s := range n.Stages {
		parts[i] = s.Label()
	}
	return "fused(" + strings.Join(parts, " → ") + ")"
}

// pointwise reports whether a node is a fusable point-wise stage.
func pointwise(n Node) bool {
	switch n.(type) {
	case *MapFn, *RestrictV:
		return true
	}
	return false
}

// Fuse collapses chains of two or more adjacent point-wise stages into
// Fused nodes. It is a separate pass applied after Optimize: the §3.4
// rewrites decide where the point-wise stages sit (merged, pushed below or
// above blocking operators), fusion then turns each remaining chain into a
// single-pass kernel.
//
// A chain only absorbs nodes with a single consumer. A node shared between
// plan branches (the ndvi macro, merged common subexpressions) backs a Tee
// in the planner; fusing across that boundary would duplicate the shared
// work once per branch instead of computing it once.
func Fuse(n Node) Node {
	refs := map[Node]int{}
	var count func(Node, map[Node]bool)
	count = func(n Node, seen map[Node]bool) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children() {
			refs[c]++
			count(c, seen)
		}
	}
	count(n, map[Node]bool{})
	refs[n]++

	rewritten := map[Node]Node{}
	var walk func(Node) Node
	walk = func(n Node) Node {
		if out, ok := rewritten[n]; ok {
			return out
		}
		var out Node
		if pointwise(n) {
			// Collect the maximal chain below this stage. Members past the
			// head must be single-consumer: a teed stage stays a boundary
			// (it starts its own chain when walked via its other parents).
			chain := []Node{n}
			cur := chainInput(n)
			for pointwise(cur) && refs[cur] == 1 {
				chain = append(chain, cur)
				cur = chainInput(cur)
			}
			if len(chain) >= 2 {
				// Stages apply innermost first.
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				out = &Fused{In: walk(cur), Stages: chain}
			}
		}
		if out == nil {
			out = rebuildWithInputs(n, walk)
		}
		rewritten[n] = out
		return out
	}
	return walk(n)
}

// chainInput returns the input of a point-wise stage.
func chainInput(n Node) Node {
	switch t := n.(type) {
	case *MapFn:
		return t.In
	case *RestrictV:
		return t.In
	}
	return nil
}

// rebuildWithInputs reproduces a node with its inputs rewritten by walk,
// preserving sharing through the caller's memo table.
func rebuildWithInputs(n Node, walk func(Node) Node) Node {
	switch t := n.(type) {
	case *Source:
		return t
	case *RestrictS:
		return &RestrictS{In: walk(t.In), Region: t.Region}
	case *RestrictT:
		return &RestrictT{In: walk(t.In), Times: t.Times}
	case *RestrictV:
		return &RestrictV{In: walk(t.In), Set: t.Set}
	case *MapFn:
		return &MapFn{In: walk(t.In), Op: t.Op, Desc: t.Desc}
	case *StretchFn:
		return &StretchFn{In: walk(t.In), Kind: t.Kind, Min: t.Min, Max: t.Max}
	case *Zoom:
		return &Zoom{In: walk(t.In), K: t.K, Out: t.Out}
	case *Reproject:
		return &Reproject{In: walk(t.In), To: t.To, Interp: t.Interp}
	case *Rotate:
		return &Rotate{In: walk(t.In), Degrees: t.Degrees}
	case *Filter:
		return &Filter{In: walk(t.In), Kind: t.Kind, N: t.N, Sigma: t.Sigma}
	case *ComposeOp:
		return &ComposeOp{L: walk(t.L), R: walk(t.R), Gamma: t.Gamma}
	case *AggT:
		return &AggT{In: walk(t.In), Fn: t.Fn, Window: t.Window}
	case *AggR:
		return &AggR{In: walk(t.In), Fn: t.Fn, Region: t.Region}
	}
	return n
}

// fusedOp instantiates the physical operator of a Fused node.
func fusedOp(t *Fused) (core.FusedPointwise, error) {
	stages := make([]core.FusedStage, len(t.Stages))
	for i, s := range t.Stages {
		switch n := s.(type) {
		case *MapFn:
			op := n.Op
			stages[i] = core.FusedStage{Transform: &op}
		case *RestrictV:
			stages[i] = core.FusedStage{Restrict: &core.ValueRestrict{Values: n.Set}}
		default:
			return core.FusedPointwise{}, fmt.Errorf("query: non-point-wise stage %T in fused node", s)
		}
	}
	return core.FusedPointwise{Stages: stages}, nil
}
