package query

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
)

// randPlanQuery generates a random query string over the test bands: a
// pipeline of 1-4 random unary operators over a random leaf (band or
// binary composition), optionally wrapped in restrictions — exercising
// the optimizer across operator interleavings it was not hand-tested on.
func randPlanQuery(rng *rand.Rand) string {
	leaf := func() string {
		switch rng.Intn(4) {
		case 0:
			return "nir"
		case 1:
			return "vis"
		case 2:
			return "(nir - vis)"
		default:
			return "ndvi(nir, vis)"
		}
	}
	q := leaf()
	depth := 1 + rng.Intn(3)
	for i := 0; i < depth; i++ {
		switch rng.Intn(8) {
		case 0:
			q = fmt.Sprintf("rselect(%s, rect(%g, %g, %g, %g))", q,
				-122+rng.Float64(), 36+rng.Float64(),
				-121+rng.Float64(), 37+rng.Float64())
		case 1:
			q = fmt.Sprintf("tselect(%s, interval(0, %d))", q, 1+rng.Intn(3))
		case 2:
			q = fmt.Sprintf("vselect(%s, range(%d, %d))", q, -2000, 2000)
		case 3:
			q = fmt.Sprintf("scale(%s, %g, %g)", q, 0.5+rng.Float64(), rng.Float64()*10)
		case 4:
			q = fmt.Sprintf("clamp(%s, -1000, 1000)", q)
		case 5:
			q = fmt.Sprintf("zoomin(%s, 2)", q)
		case 6:
			q = fmt.Sprintf("zoomout(%s, 2)", q)
		case 7:
			q = fmt.Sprintf("boxfilter(%s, 3)", q)
		}
	}
	// Half the time, put a final spatial restriction on top — the case
	// the §3.4 rewrites target.
	if rng.Intn(2) == 0 {
		q = fmt.Sprintf("rselect(%s, rect(-121.8, 36.2, -120.2, 37.8))", q)
	}
	return q
}

// runPlanOnWorkload executes a plan over a fresh deterministic workload
// and returns its data points keyed by rounded location.
func runPlanOnWorkload(t *testing.T, plan Node, optimize bool) (map[[3]int64]float64, error) {
	t.Helper()
	g := stream.NewGroup(context.Background())
	scene := sat.DefaultScene(99)
	im, err := sat.NewLatLonImager(geom.R(-122, 36, -120, 38), 20, 14, scene,
		[]string{"nir", "vis"}, stream.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	sources, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]stream.Info{
		"nir": im.Info(im.Bands[0]),
		"vis": im.Info(im.Bands[1]),
	}
	if optimize {
		if plan, err = Optimize(plan, catalog); err != nil {
			return nil, err
		}
	}
	if err := Validate(plan, catalog); err != nil {
		return nil, err
	}
	// Drain the bands the plan does not read, or their generators block.
	used := Bands(plan)
	for band, s := range sources {
		if used[band] == 0 {
			go stream.Drain(context.Background(), s) //nolint:errcheck
		}
	}
	out, _, err := Build(g, plan, sources)
	if err != nil {
		return nil, err
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		return nil, err
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	pts := map[[3]int64]float64{}
	for _, c := range chunks {
		c.ForEachPoint(func(p geom.Point, v float64) {
			if math.IsNaN(v) {
				return
			}
			// Quantize locations: different plan shapes produce last-ulp
			// coordinate differences (sub-lattice origins).
			key := [3]int64{
				int64(math.Round(p.S.X * 1e6)),
				int64(math.Round(p.S.Y * 1e6)),
				int64(p.T),
			}
			pts[key] = v
		})
	}
	return pts, nil
}

// TestOptimizerEquivalenceRandomPlans is the central optimizer property:
// for random plans, the optimized plan produces exactly the same data
// points as the naive plan.
func TestOptimizerEquivalenceRandomPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence sweep")
	}
	rng := rand.New(rand.NewSource(20060328))
	trials := 25
	for i := 0; i < trials; i++ {
		q := randPlanQuery(rng)
		plan, err := Parse(q, testBands)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", i, q, err)
		}
		naive, err := runPlanOnWorkload(t, plan, false)
		if err != nil {
			t.Fatalf("trial %d: naive run of %q: %v", i, q, err)
		}
		// Re-parse so the optimized run gets independent node pointers.
		plan2, err := Parse(q, testBands)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := runPlanOnWorkload(t, plan2, true)
		if err != nil {
			t.Fatalf("trial %d: optimized run of %q: %v", i, q, err)
		}
		if len(naive) != len(opt) {
			t.Fatalf("trial %d: %q\nnaive %d points, optimized %d points",
				i, q, len(naive), len(opt))
		}
		for k, v := range naive {
			ov, ok := opt[k]
			if !ok {
				t.Fatalf("trial %d: %q\noptimized plan missing point %v", i, q, k)
			}
			if math.Abs(ov-v) > 1e-6*(1+math.Abs(v)) {
				t.Fatalf("trial %d: %q\nvalue mismatch at %v: %g vs %g", i, q, k, v, ov)
			}
		}
	}
}

// TestOptimizerIdempotent: optimizing an already-optimized plan changes
// nothing structurally.
func TestOptimizerIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	catalog := map[string]stream.Info{
		"nir": {Band: "nir", CRS: mustLatLon(), VMax: 1023},
		"vis": {Band: "vis", CRS: mustLatLon(), VMax: 1023},
	}
	for i := 0; i < 40; i++ {
		q := randPlanQuery(rng)
		plan, err := Parse(q, testBands)
		if err != nil {
			t.Fatal(err)
		}
		once, err := Optimize(plan, catalog)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		twice, err := Optimize(once, catalog)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if Format(once) != Format(twice) {
			t.Fatalf("optimizer not idempotent for %q:\nonce:\n%stwice:\n%s",
				q, Format(once), Format(twice))
		}
	}
}
