package query

import (
	"fmt"

	"geostreams/internal/coord"
	"geostreams/internal/core"
	"geostreams/internal/geom"
	"geostreams/internal/imagealg"
	"geostreams/internal/valueset"
)

// Parse compiles a query string into a logical plan. `bands` is the set of
// source band names the catalog offers; bare identifiers resolve against
// it.
func Parse(src string, bands map[string]bool) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, bands: bands}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	n, err := v.asNode(p.prev().pos)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// argVal is the union of argument kinds a function call can receive.
type argVal struct {
	node   Node
	num    *float64
	ident  string // enum keyword (linear, mean, nearest, ...)
	str    string // string literal (CRS names)
	isStr  bool
	region geom.Region
	times  geom.TimeSet
	vset   valueset.Set
}

func (v argVal) kind() string {
	switch {
	case v.node != nil:
		return "stream"
	case v.num != nil:
		return "number"
	case v.region != nil:
		return "region"
	case v.times != nil:
		return "timeset"
	case v.vset != nil:
		return "valueset"
	case v.isStr:
		return "string"
	case v.ident != "":
		return "keyword"
	}
	return "nothing"
}

func (v argVal) asNode(pos int) (Node, error) {
	if v.node == nil {
		return nil, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a stream expression, got %s", v.kind())}
	}
	return v.node, nil
}

func (v argVal) asNum(pos int) (float64, error) {
	if v.num == nil {
		return 0, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a number, got %s", v.kind())}
	}
	return *v.num, nil
}

func (v argVal) asRegion(pos int) (geom.Region, error) {
	if v.region == nil {
		return nil, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a region, got %s", v.kind())}
	}
	return v.region, nil
}

func (v argVal) asTimes(pos int) (geom.TimeSet, error) {
	if v.times == nil {
		return nil, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a time set, got %s", v.kind())}
	}
	return v.times, nil
}

func (v argVal) asVSet(pos int) (valueset.Set, error) {
	if v.vset == nil {
		return nil, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a value set, got %s", v.kind())}
	}
	return v.vset, nil
}

func (v argVal) asKeyword(pos int) (string, error) {
	if v.ident == "" {
		return "", &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a keyword, got %s", v.kind())}
	}
	return v.ident, nil
}

func (v argVal) asString(pos int) (string, error) {
	if v.isStr {
		return v.str, nil
	}
	if v.ident != "" { // allow bare idents where strings are expected (latlon)
		return v.ident, nil
	}
	return "", &SyntaxError{Pos: pos, Msg: fmt.Sprintf("expected a string, got %s", v.kind())}
}

type parser struct {
	toks  []token
	i     int
	depth int
	bands map[string]bool
}

// maxParseDepth bounds expression nesting so adversarial input (deep paren
// or unary-minus towers) errors out instead of exhausting the goroutine
// stack. Real queries nest a handful of levels.
const maxParseDepth = 200

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) prev() token { return p.toks[max(0, p.i-1)] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokenKind) error {
	if p.cur().kind != k {
		return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf("expected %v, got %v", k, p.cur().kind)}
	}
	p.i++
	return nil
}

// parseExpr handles + and - (loosest binding).
func (p *parser) parseExpr() (argVal, error) {
	v, err := p.parseTerm()
	if err != nil {
		return argVal{}, err
	}
	for {
		var g valueset.Gamma
		switch p.cur().kind {
		case tokPlus:
			g = valueset.Add
		case tokMinus:
			g = valueset.Sub
		default:
			return v, nil
		}
		opTok := p.next()
		r, err := p.parseTerm()
		if err != nil {
			return argVal{}, err
		}
		v, err = composeVals(v, r, g, opTok.pos)
		if err != nil {
			return argVal{}, err
		}
	}
}

// parseTerm handles * and /.
func (p *parser) parseTerm() (argVal, error) {
	v, err := p.parseFactor()
	if err != nil {
		return argVal{}, err
	}
	for {
		var g valueset.Gamma
		switch p.cur().kind {
		case tokStar:
			g = valueset.Mul
		case tokSlash:
			g = valueset.Div
		default:
			return v, nil
		}
		opTok := p.next()
		r, err := p.parseFactor()
		if err != nil {
			return argVal{}, err
		}
		v, err = composeVals(v, r, g, opTok.pos)
		if err != nil {
			return argVal{}, err
		}
	}
}

// composeVals combines two argVals under an arithmetic operator: stream op
// stream is a composition; number op number folds.
func composeVals(l, r argVal, g valueset.Gamma, pos int) (argVal, error) {
	if l.node != nil && r.node != nil {
		return argVal{node: &ComposeOp{L: l.node, R: r.node, Gamma: g}}, nil
	}
	if l.num != nil && r.num != nil {
		v := g.Apply(*l.num, *r.num)
		return argVal{num: &v}, nil
	}
	return argVal{}, &SyntaxError{Pos: pos,
		Msg: fmt.Sprintf("operator %s needs two streams or two numbers, got %s and %s",
			g, l.kind(), r.kind())}
}

// parseFactor handles literals, identifiers, calls, parens, and unary minus.
func (p *parser) parseFactor() (argVal, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return argVal{}, &SyntaxError{Pos: p.cur().pos, Msg: "expression nested too deeply"}
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		v := t.num
		return argVal{num: &v}, nil
	case tokMinus:
		p.i++
		inner, err := p.parseFactor()
		if err != nil {
			return argVal{}, err
		}
		n, err := inner.asNum(t.pos)
		if err != nil {
			return argVal{}, &SyntaxError{Pos: t.pos, Msg: "unary minus applies to numbers only"}
		}
		neg := -n
		return argVal{num: &neg}, nil
	case tokString:
		p.i++
		return argVal{str: t.text, isStr: true}, nil
	case tokLParen:
		p.i++
		v, err := p.parseExpr()
		if err != nil {
			return argVal{}, err
		}
		if err := p.expect(tokRParen); err != nil {
			return argVal{}, err
		}
		return v, nil
	case tokIdent:
		p.i++
		if p.cur().kind == tokLParen {
			return p.parseCall(t)
		}
		if p.bands[t.text] {
			return argVal{node: &Source{Band: t.text}}, nil
		}
		return argVal{ident: t.text}, nil
	}
	return argVal{}, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("unexpected %v", t.kind)}
}

// parseCall parses name '(' args ')' and dispatches to the builtin table.
func (p *parser) parseCall(name token) (argVal, error) {
	if err := p.expect(tokLParen); err != nil {
		return argVal{}, err
	}
	var args []argVal
	if p.cur().kind != tokRParen {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return argVal{}, err
			}
			args = append(args, a)
			if p.cur().kind != tokComma {
				break
			}
			p.i++
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return argVal{}, err
	}
	fn, ok := builtins[name.text]
	if !ok {
		return argVal{}, &SyntaxError{Pos: name.pos, Msg: fmt.Sprintf("unknown function %q", name.text)}
	}
	return fn(name.pos, args)
}

// builtin implements one query-language function.
type builtin func(pos int, args []argVal) (argVal, error)

func arity(pos int, args []argVal, want int, name string) error {
	if len(args) != want {
		return &SyntaxError{Pos: pos, Msg: fmt.Sprintf("%s takes %d argument(s), got %d", name, want, len(args))}
	}
	return nil
}

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		// --- region constructors (§3.1 specification styles) ----------
		"rect": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 4, "rect"); err != nil {
				return argVal{}, err
			}
			var v [4]float64
			for i := range v {
				n, err := args[i].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				v[i] = n
			}
			return argVal{region: geom.NewRectRegion(geom.R(v[0], v[1], v[2], v[3]))}, nil
		},
		"disk": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "disk"); err != nil {
				return argVal{}, err
			}
			cx, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			cy, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			r, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{region: geom.Disk(cx, cy, r)}, nil
		},
		"polygon": func(pos int, args []argVal) (argVal, error) {
			if len(args) < 6 || len(args)%2 != 0 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "polygon takes >= 3 x,y pairs"}
			}
			verts := make([]geom.Vec2, len(args)/2)
			for i := range verts {
				x, err := args[2*i].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				y, err := args[2*i+1].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				verts[i] = geom.V2(x, y)
			}
			poly, err := geom.NewPolygonRegion(verts)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			return argVal{region: poly}, nil
		},
		"world": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 0, "world"); err != nil {
				return argVal{}, err
			}
			return argVal{region: geom.WorldRegion{}}, nil
		},

		// --- time set constructors -------------------------------------
		"interval": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "interval"); err != nil {
				return argVal{}, err
			}
			a, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			b, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{times: geom.NewInterval(geom.Timestamp(a), geom.Timestamp(b))}, nil
		},
		"since": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 1, "since"); err != nil {
				return argVal{}, err
			}
			a, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{times: geom.Since(geom.Timestamp(a))}, nil
		},
		"instants": func(pos int, args []argVal) (argVal, error) {
			if len(args) == 0 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "instants needs at least one timestamp"}
			}
			ts := make([]geom.Timestamp, len(args))
			for i := range args {
				n, err := args[i].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				ts[i] = geom.Timestamp(n)
			}
			return argVal{times: geom.NewInstants(ts...)}, nil
		},
		"recurring": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "recurring"); err != nil {
				return argVal{}, err
			}
			var v [3]float64
			for i := range v {
				n, err := args[i].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				v[i] = n
			}
			r, err := geom.NewRecurring(geom.Timestamp(v[0]), geom.Timestamp(v[1]), geom.Timestamp(v[2]))
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			return argVal{times: r}, nil
		},
		"alltime": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 0, "alltime"); err != nil {
				return argVal{}, err
			}
			return argVal{times: geom.AllTime{}}, nil
		},

		// --- value set constructors -------------------------------------
		"range": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "range"); err != nil {
				return argVal{}, err
			}
			a, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			b, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			r, err := valueset.NewRange(a, b)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			return argVal{vset: r}, nil
		},
		"above": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 1, "above"); err != nil {
				return argVal{}, err
			}
			a, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{vset: valueset.Above{Threshold: a}}, nil
		},
		"below": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 1, "below"); err != nil {
				return argVal{}, err
			}
			a, err := args[0].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{vset: valueset.Below{Threshold: a}}, nil
		},
		"finite": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 0, "finite"); err != nil {
				return argVal{}, err
			}
			return argVal{vset: valueset.Finite{}}, nil
		},

		// --- restrictions (§3.1) ----------------------------------------
		"rselect": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "rselect"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			r, err := args[1].asRegion(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &RestrictS{In: in, Region: r}}, nil
		},
		"tselect": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "tselect"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			ts, err := args[1].asTimes(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &RestrictT{In: in, Times: ts}}, nil
		},
		"vselect": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "vselect"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			vs, err := args[1].asVSet(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &RestrictV{In: in, Set: vs}}, nil
		},

		// --- value transforms (§3.2) -------------------------------------
		"scale": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "scale"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			a, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			b, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			desc := fmt.Sprintf("scale(%g, %g)", a, b)
			return argVal{node: &MapFn{In: in, Desc: desc,
				Op: core.ValueTransform{Fn: imagealg.Scale(a, b),
					Block: imagealg.ScaleBlock(a, b), Label: desc}}}, nil
		},
		"clamp": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "clamp"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			lo, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			hi, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			desc := fmt.Sprintf("clamp(%g, %g)", lo, hi)
			return argVal{node: &MapFn{In: in, Desc: desc,
				Op: core.ValueTransform{Fn: imagealg.Clamp(lo, hi),
					Block: imagealg.ClampBlock(lo, hi), Label: desc,
					Rerange: true, OutMin: lo, OutMax: hi}}}, nil
		},
		"threshold": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 4, "threshold"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			var v [3]float64
			for i := 0; i < 3; i++ {
				n, err := args[i+1].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				v[i] = n
			}
			desc := fmt.Sprintf("threshold(%g, %g, %g)", v[0], v[1], v[2])
			return argVal{node: &MapFn{In: in, Desc: desc,
				Op: core.ValueTransform{Fn: imagealg.Threshold(v[0], v[1], v[2]),
					Block: imagealg.ThresholdBlock(v[0], v[1], v[2]), Label: desc,
					Rerange: true, OutMin: v[1], OutMax: v[2]}}}, nil
		},
		"stretch": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 4, "stretch"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			kw, err := args[1].asKeyword(pos)
			if err != nil {
				return argVal{}, err
			}
			kind, err := core.ParseStretchKind(kw)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			lo, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			hi, err := args[3].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &StretchFn{In: in, Kind: kind, Min: lo, Max: hi}}, nil
		},

		// --- spatial transforms (§3.2) -----------------------------------
		"zoomin": func(pos int, args []argVal) (argVal, error) {
			return parseZoom(pos, args, false)
		},
		"zoomout": func(pos int, args []argVal) (argVal, error) {
			return parseZoom(pos, args, true)
		},
		"reproject": func(pos int, args []argVal) (argVal, error) {
			if len(args) != 2 && len(args) != 3 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "reproject takes (stream, crs [, interp])"}
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			crsName, err := args[1].asString(pos)
			if err != nil {
				return argVal{}, err
			}
			crs, err := coord.Parse(crsName)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			interp := core.Bilinear
			if len(args) == 3 {
				kw, err := args[2].asKeyword(pos)
				if err != nil {
					return argVal{}, err
				}
				if interp, err = core.ParseInterp(kw); err != nil {
					return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
				}
			}
			return argVal{node: &Reproject{In: in, To: crs, Interp: interp}}, nil
		},
		"boxfilter": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "boxfilter"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			n, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			if n != float64(int(n)) || int(n) < 3 || int(n)%2 == 0 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "boxfilter size must be an odd integer >= 3"}
			}
			return argVal{node: &Filter{In: in, Kind: "box", N: int(n)}}, nil
		},
		"gaussfilter": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "gaussfilter"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			n, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			sigma, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			if n != float64(int(n)) || int(n) < 3 || int(n)%2 == 0 || sigma <= 0 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "gaussfilter needs odd size >= 3 and sigma > 0"}
			}
			return argVal{node: &Filter{In: in, Kind: "gauss", N: int(n), Sigma: sigma}}, nil
		},
		"gradient": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 1, "gradient"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &Filter{In: in, Kind: "gradient"}}, nil
		},
		"gammac": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 4, "gammac"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			var v [3]float64
			for i := 0; i < 3; i++ {
				n, err := args[i+1].asNum(pos)
				if err != nil {
					return argVal{}, err
				}
				v[i] = n
			}
			if v[0] <= 0 {
				return argVal{}, &SyntaxError{Pos: pos, Msg: "gamma must be positive"}
			}
			desc := fmt.Sprintf("gammac(%g, %g, %g)", v[0], v[1], v[2])
			return argVal{node: &MapFn{In: in, Desc: desc,
				Op: core.ValueTransform{Fn: imagealg.Gamma(v[0], v[1], v[2]),
					Block: imagealg.GammaBlock(v[0], v[1], v[2]), Label: desc}}}, nil
		},
		"rotate": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "rotate"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			deg, err := args[1].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &Rotate{In: in, Degrees: deg}}, nil
		},

		// --- compositions (§3.3) ------------------------------------------
		"sup": func(pos int, args []argVal) (argVal, error) {
			return parseBinGamma(pos, args, valueset.Sup, "sup")
		},
		"inf": func(pos int, args []argVal) (argVal, error) {
			return parseBinGamma(pos, args, valueset.Inf, "inf")
		},
		"ndvi": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 2, "ndvi"); err != nil {
				return argVal{}, err
			}
			nir, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			vis, err := args[1].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			// (nir - vis) / (nir + vis); the shared node pointers let the
			// planner tee each input once.
			return argVal{node: &ComposeOp{
				Gamma: valueset.Div,
				L:     &ComposeOp{Gamma: valueset.Sub, L: nir, R: vis},
				R:     &ComposeOp{Gamma: valueset.Add, L: nir, R: vis},
			}}, nil
		},

		// --- aggregates (§6 / ref [27]) -----------------------------------
		"agg_t": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "agg_t"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			kw, err := args[1].asKeyword(pos)
			if err != nil {
				return argVal{}, err
			}
			fn, err := core.ParseAggFunc(kw)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			w, err := args[2].asNum(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &AggT{In: in, Fn: fn, Window: int(w)}}, nil
		},
		"agg_r": func(pos int, args []argVal) (argVal, error) {
			if err := arity(pos, args, 3, "agg_r"); err != nil {
				return argVal{}, err
			}
			in, err := args[0].asNode(pos)
			if err != nil {
				return argVal{}, err
			}
			kw, err := args[1].asKeyword(pos)
			if err != nil {
				return argVal{}, err
			}
			fn, err := core.ParseAggFunc(kw)
			if err != nil {
				return argVal{}, &SyntaxError{Pos: pos, Msg: err.Error()}
			}
			r, err := args[2].asRegion(pos)
			if err != nil {
				return argVal{}, err
			}
			return argVal{node: &AggR{In: in, Fn: fn, Region: r}}, nil
		},
	}
}

func parseZoom(pos int, args []argVal, out bool) (argVal, error) {
	name := "zoomin"
	if out {
		name = "zoomout"
	}
	if err := arity(pos, args, 2, name); err != nil {
		return argVal{}, err
	}
	in, err := args[0].asNode(pos)
	if err != nil {
		return argVal{}, err
	}
	k, err := args[1].asNum(pos)
	if err != nil {
		return argVal{}, err
	}
	if k != float64(int(k)) || int(k) < 2 {
		return argVal{}, &SyntaxError{Pos: pos, Msg: fmt.Sprintf("%s factor must be an integer >= 2", name)}
	}
	return argVal{node: &Zoom{In: in, K: int(k), Out: out}}, nil
}

func parseBinGamma(pos int, args []argVal, g valueset.Gamma, name string) (argVal, error) {
	if err := arity(pos, args, 2, name); err != nil {
		return argVal{}, err
	}
	l, err := args[0].asNode(pos)
	if err != nil {
		return argVal{}, err
	}
	r, err := args[1].asNode(pos)
	if err != nil {
		return argVal{}, err
	}
	return argVal{node: &ComposeOp{L: l, R: r, Gamma: g}}, nil
}
