package query

import (
	"fmt"
	"math"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/stream"
	"geostreams/internal/valueset"
)

// Optimize applies the §3.4 rewrite rules to a logical plan:
//
//  1. Adjacent restrictions of the same kind merge into one
//     (G|R1|R2 ⇒ G|(R1 ∩ R2); likewise temporal and value).
//  2. Spatial restrictions push inward — through value transforms and
//     stretches, into both inputs of compositions, through zooms (with a
//     conservatively widened region and the exact restriction kept on
//     top), and through re-projections by mapping the region into the
//     source coordinate system ("because in the query R is based on the
//     UTM coordinate system, R needs to be mapped to the coordinate
//     system C"). The paper: the optimizer targets "in particular spatial
//     selections, as these result in the most significant space and time
//     gains".
//  3. Temporal restrictions push all the way to the sources (timestamps
//     are preserved by every unary operator and must match across
//     composition inputs).
//
// The catalog maps band names to their stream metadata; the rewriter needs
// it to know the coordinate system and resolution below each plan node.
// Rewrites are memoized by (node pointer, parameter), so subtrees shared
// between plan branches (the ndvi macro, common subexpressions) stay
// shared and the planner still tees them once.
func Optimize(n Node, catalog map[string]stream.Info) (Node, error) {
	rw := &rewriter{
		catalog:  catalog,
		merged:   map[Node]Node{},
		pushed:   map[Node]Node{},
		spatial:  map[paramKey]Node{},
		temporal: map[paramKey]Node{},
	}
	n = rw.merge(n)
	n, err := rw.push(n)
	if err != nil {
		return nil, err
	}
	// A second merge collapses restrictions the push phase stacked.
	rw.merged = map[Node]Node{}
	return rw.merge(n), nil
}

// paramKey keys memoization by input node identity plus the textual form
// of the pushed parameter (regions and time sets are not comparable as
// interface values — some contain funcs — but their String forms are
// canonical).
type paramKey struct {
	n     Node
	param string
}

type rewriter struct {
	catalog  map[string]stream.Info
	merged   map[Node]Node
	pushed   map[Node]Node
	spatial  map[paramKey]Node
	temporal map[paramKey]Node
}

// merge collapses stacked restrictions bottom-up.
func (rw *rewriter) merge(n Node) Node {
	if out, ok := rw.merged[n]; ok {
		return out
	}
	var out Node
	switch t := n.(type) {
	case *Source:
		out = t
	case *RestrictS, *RestrictT, *RestrictV:
		out = rw.mergeRestrictChain(n)
	case *MapFn:
		out = &MapFn{In: rw.merge(t.In), Op: t.Op, Desc: t.Desc}
	case *StretchFn:
		out = &StretchFn{In: rw.merge(t.In), Kind: t.Kind, Min: t.Min, Max: t.Max}
	case *Zoom:
		out = &Zoom{In: rw.merge(t.In), K: t.K, Out: t.Out}
	case *Reproject:
		out = &Reproject{In: rw.merge(t.In), To: t.To, Interp: t.Interp}
	case *Rotate:
		out = &Rotate{In: rw.merge(t.In), Degrees: t.Degrees}
	case *Filter:
		out = &Filter{In: rw.merge(t.In), Kind: t.Kind, N: t.N, Sigma: t.Sigma}
	case *ComposeOp:
		out = &ComposeOp{L: rw.merge(t.L), R: rw.merge(t.R), Gamma: t.Gamma}
	case *AggT:
		out = &AggT{In: rw.merge(t.In), Fn: t.Fn, Window: t.Window}
	case *AggR:
		out = &AggR{In: rw.merge(t.In), Fn: t.Fn, Region: t.Region}
	default:
		out = n
	}
	rw.merged[n] = out
	return out
}

// mergeRestrictChain collapses a maximal stack of restrictions into at
// most one restriction per kind, in the canonical order
// value ⊃ spatial ⊃ temporal (temporal innermost: it is the cheapest test
// and executes first in stream order). The canonical order is what makes
// Optimize idempotent — the spatial and temporal push rules each descend
// through the other kind, so without normalization repeated optimization
// would flip their relative order forever.
func (rw *rewriter) mergeRestrictChain(n Node) Node {
	var regions []geom.Region
	var times []geom.TimeSet
	var sets []valueset.Set
	cur := n
loop:
	for {
		switch t := cur.(type) {
		case *RestrictS:
			regions = append(regions, t.Region)
			cur = t.In
		case *RestrictT:
			times = append(times, t.Times)
			cur = t.In
		case *RestrictV:
			sets = append(sets, t.Set)
			cur = t.In
		default:
			break loop
		}
	}
	out := rw.merge(cur)
	if len(times) > 0 {
		out = &RestrictT{In: out, Times: geom.IntersectTime(times...)}
	}
	if len(regions) > 0 {
		out = &RestrictS{In: out, Region: geom.Intersect(regions...)}
	}
	if len(sets) > 0 {
		out = &RestrictV{In: out, Set: valueset.IntersectSets(sets...)}
	}
	return out
}

// crsOf computes the coordinate system a plan node's output lives in.
func crsOf(n Node, catalog map[string]stream.Info) (coord.CRS, error) {
	switch t := n.(type) {
	case *Source:
		in, ok := catalog[t.Band]
		if !ok {
			return nil, fmt.Errorf("query: unknown band %q", t.Band)
		}
		return in.CRS, nil
	case *Reproject:
		return t.To, nil
	}
	kids := n.Children()
	if len(kids) == 0 {
		return nil, fmt.Errorf("query: cannot determine CRS of %s", n.Label())
	}
	return crsOf(kids[0], catalog)
}

// resOf computes the output cell size of a node (the larger of |DX|, |DY|)
// or 0 when unknown (no sector metadata or a re-projection below).
func resOf(n Node, catalog map[string]stream.Info) float64 {
	switch t := n.(type) {
	case *Source:
		in, ok := catalog[t.Band]
		if !ok || !in.HasSectorMeta {
			return 0
		}
		return math.Max(math.Abs(in.SectorGeom.DX), math.Abs(in.SectorGeom.DY))
	case *Reproject, *Rotate:
		return 0 // resolution re-derived per sector; treat as unknown
	case *Zoom:
		r := resOf(t.In, catalog)
		if r == 0 {
			return 0
		}
		if t.Out {
			return r * float64(t.K)
		}
		return r / float64(t.K)
	}
	kids := n.Children()
	if len(kids) == 0 {
		return 0
	}
	return resOf(kids[0], catalog)
}

// push walks the plan once, pushing each restriction it finds as deep as
// the rules allow.
func (rw *rewriter) push(n Node) (Node, error) {
	if out, ok := rw.pushed[n]; ok {
		return out, nil
	}
	var out Node
	var err error
	switch t := n.(type) {
	case *Source:
		out = t
	case *RestrictS:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out, err = rw.pushSpatial(t.Region, in)
		}
	case *RestrictT:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = rw.pushTemporal(t.Times, in)
		}
	case *RestrictV:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &RestrictV{In: in, Set: t.Set}
		}
	case *MapFn:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &MapFn{In: in, Op: t.Op, Desc: t.Desc}
		}
	case *StretchFn:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &StretchFn{In: in, Kind: t.Kind, Min: t.Min, Max: t.Max}
		}
	case *Zoom:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &Zoom{In: in, K: t.K, Out: t.Out}
		}
	case *Reproject:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &Reproject{In: in, To: t.To, Interp: t.Interp}
		}
	case *Rotate:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &Rotate{In: in, Degrees: t.Degrees}
		}
	case *Filter:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &Filter{In: in, Kind: t.Kind, N: t.N, Sigma: t.Sigma}
		}
	case *ComposeOp:
		var l, r Node
		if l, err = rw.push(t.L); err == nil {
			if r, err = rw.push(t.R); err == nil {
				out = &ComposeOp{L: l, R: r, Gamma: t.Gamma}
			}
		}
	case *AggT:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &AggT{In: in, Fn: t.Fn, Window: t.Window}
		}
	case *AggR:
		var in Node
		if in, err = rw.push(t.In); err == nil {
			out = &AggR{In: in, Fn: t.Fn, Region: t.Region}
		}
	default:
		out = n
	}
	if err != nil {
		return nil, err
	}
	rw.pushed[n] = out
	return out, nil
}

// pushSpatial places the spatial restriction G|R as deep into the plan as
// semantics allow. Where pushing is conservative (zooms, re-projections),
// the exact restriction stays on top and a widened/mapped restriction goes
// below; where it is exact (value transforms, compositions, restrictions)
// the restriction simply descends.
func (rw *rewriter) pushSpatial(r geom.Region, n Node) (Node, error) {
	key := paramKey{n: n, param: r.String()}
	if out, ok := rw.spatial[key]; ok {
		return out, nil
	}
	out, err := rw.pushSpatialUncached(r, n)
	if err != nil {
		return nil, err
	}
	rw.spatial[key] = out
	return out, nil
}

func (rw *rewriter) pushSpatialUncached(r geom.Region, n Node) (Node, error) {
	switch t := n.(type) {
	case *MapFn:
		in, err := rw.pushSpatial(r, t.In)
		if err != nil {
			return nil, err
		}
		return &MapFn{In: in, Op: t.Op, Desc: t.Desc}, nil
	case *StretchFn:
		// Product semantics: the stretch fits over the restricted region
		// (the paper's §3.4 example pushes R below f_val).
		in, err := rw.pushSpatial(r, t.In)
		if err != nil {
			return nil, err
		}
		return &StretchFn{In: in, Kind: t.Kind, Min: t.Min, Max: t.Max}, nil
	case *ComposeOp:
		l, err := rw.pushSpatial(r, t.L)
		if err != nil {
			return nil, err
		}
		rr, err := rw.pushSpatial(r, t.R)
		if err != nil {
			return nil, err
		}
		return &ComposeOp{L: l, R: rr, Gamma: t.Gamma}, nil
	case *RestrictS:
		return rw.pushSpatial(geom.Intersect(r, t.Region), t.In)
	case *RestrictT:
		in, err := rw.pushSpatial(r, t.In)
		if err != nil {
			return nil, err
		}
		return &RestrictT{In: in, Times: t.Times}, nil
	case *RestrictV:
		in, err := rw.pushSpatial(r, t.In)
		if err != nil {
			return nil, err
		}
		return &RestrictV{In: in, Set: t.Set}, nil
	case *Zoom:
		if t.Out {
			// zoomout aggregates k×k blocks phased from the first point it
			// sees: cropping its input shifts the block grid, moving output
			// points (and their values) at the region boundary. Not
			// restriction-compatible bit for bit — stop here. (The
			// equivalence harness caught exactly this: zoomout over a
			// widened crop produced a shifted lattice.)
			return &RestrictS{In: n, Region: r}, nil
		}
		res := resOf(t.In, rw.catalog)
		if res == 0 {
			// Unknown source resolution: cannot widen safely, stop here.
			return &RestrictS{In: n, Region: r}, nil
		}
		// zoomin interpolates on the sub-lattice of its input origin, and
		// cropping removes whole cells, so the output lattice phase is
		// preserved; the margin keeps every surviving point's interpolation
		// neighborhood inside the widened crop.
		margin := float64(t.K+1) * res
		box := r.Bounds().Expand(margin)
		widened := geom.FuncRegion{
			Fn:  box.Contains,
			Box: box,
			Tag: fmt.Sprintf("widen(%s, %g)", r, margin),
		}
		in, err := rw.pushSpatial(widened, t.In)
		if err != nil {
			return nil, err
		}
		// Exact restriction stays on top of the zoom.
		return &RestrictS{In: &Zoom{In: in, K: t.K, Out: t.Out}, Region: r}, nil
	case *Filter:
		// A neighborhood operator reads a kernel radius around every
		// output point: widen the region accordingly, keep the exact
		// restriction on top.
		res := resOf(t.In, rw.catalog)
		if res == 0 {
			return &RestrictS{In: n, Region: r}, nil
		}
		radius := 1
		if t.Kind != "gradient" {
			radius = t.N / 2
		}
		margin := float64(radius+1) * res
		box := r.Bounds().Expand(margin)
		widened := geom.FuncRegion{
			Fn:  box.Contains,
			Box: box,
			Tag: fmt.Sprintf("widen(%s, %g)", r, margin),
		}
		in, err := rw.pushSpatial(widened, t.In)
		if err != nil {
			return nil, err
		}
		return &RestrictS{In: &Filter{In: in, Kind: t.Kind, N: t.N, Sigma: t.Sigma}, Region: r}, nil
	case *Reproject:
		srcCRS, err := crsOf(t.In, rw.catalog)
		if err != nil {
			return nil, err
		}
		mapped, err := coord.MapRegion(srcCRS, t.To, r)
		if err != nil {
			// The region does not map into the source system (out of
			// domain); fall back to filtering above the transform.
			return &RestrictS{In: n, Region: r}, nil //nolint:nilerr
		}
		in, err := rw.pushSpatial(mapped, t.In)
		if err != nil {
			return nil, err
		}
		// Keep the exact restriction above: the re-projected lattice is
		// cropped precisely in target coordinates.
		return &RestrictS{In: &Reproject{In: in, To: t.To, Interp: t.Interp}, Region: r}, nil
	default:
		// Sources, rotations (center unknown at plan time), aggregates,
		// anything unknown: the restriction lands here.
		return &RestrictS{In: n, Region: r}, nil
	}
}

// pushTemporal pushes a temporal restriction toward the sources; every
// operator preserves timestamps, so this is always exact.
func (rw *rewriter) pushTemporal(ts geom.TimeSet, n Node) Node {
	key := paramKey{n: n, param: ts.String()}
	if out, ok := rw.temporal[key]; ok {
		return out
	}
	var out Node
	switch t := n.(type) {
	case *Source:
		out = &RestrictT{In: t, Times: ts}
	case *RestrictS:
		out = &RestrictS{In: rw.pushTemporal(ts, t.In), Region: t.Region}
	case *RestrictT:
		out = rw.pushTemporal(geom.IntersectTime(ts, t.Times), t.In)
	case *RestrictV:
		out = &RestrictV{In: rw.pushTemporal(ts, t.In), Set: t.Set}
	case *MapFn:
		out = &MapFn{In: rw.pushTemporal(ts, t.In), Op: t.Op, Desc: t.Desc}
	case *StretchFn:
		out = &StretchFn{In: rw.pushTemporal(ts, t.In), Kind: t.Kind, Min: t.Min, Max: t.Max}
	case *Zoom:
		out = &Zoom{In: rw.pushTemporal(ts, t.In), K: t.K, Out: t.Out}
	case *Reproject:
		out = &Reproject{In: rw.pushTemporal(ts, t.In), To: t.To, Interp: t.Interp}
	case *Rotate:
		out = &Rotate{In: rw.pushTemporal(ts, t.In), Degrees: t.Degrees}
	case *Filter:
		out = &Filter{In: rw.pushTemporal(ts, t.In), Kind: t.Kind, N: t.N, Sigma: t.Sigma}
	case *ComposeOp:
		out = &ComposeOp{L: rw.pushTemporal(ts, t.L), R: rw.pushTemporal(ts, t.R), Gamma: t.Gamma}
	case *AggT:
		// Windows straddle the restriction boundary; keep it above.
		out = &RestrictT{In: t, Times: ts}
	case *AggR:
		out = &AggR{In: rw.pushTemporal(ts, t.In), Fn: t.Fn, Region: t.Region}
	default:
		out = &RestrictT{In: n, Times: ts}
	}
	rw.temporal[key] = out
	return out
}
