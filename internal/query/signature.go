package query

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"geostreams/internal/valueset"
)

// Signature returns the canonical structural signature of a plan: operator
// labels (which carry every parameter) plus source identity, composed
// recursively. Two plans with equal signatures denote the same GeoStream
// and may be mounted on the same shared trunk.
//
// Commutative compositions (+, ×, sup, inf) are normalized by sorting the
// two child signatures, so A+B and B+A canonicalize identically. This
// preserves bit-identical outputs: IEEE-754 addition, multiplication, max
// and min are commutative (including NaN propagation as the composition
// implements it), only non-associative — and the rewrite never reassociates.
// Subtraction and division keep their operand order.
//
// The signature trusts Label(): a MapFn's closure is represented by its
// Desc, which the parser derives deterministically from the query text.
// Plans assembled programmatically with custom ValueTransforms must give
// distinct transforms distinct labels or keep sharing disabled.
func Signature(n Node) string {
	memo := map[Node]string{}
	var sig func(Node) string
	sig = func(n Node) string {
		if s, ok := memo[n]; ok {
			return s
		}
		kids := n.Children()
		var s string
		if len(kids) == 0 {
			s = n.Label()
		} else {
			parts := make([]string, len(kids))
			for i, c := range kids {
				parts[i] = sig(c)
			}
			if co, ok := n.(*ComposeOp); ok && Commutative(co.Gamma) {
				sort.Strings(parts)
			}
			s = n.Label() + "[" + strings.Join(parts, " | ") + "]"
		}
		memo[n] = s
		return s
	}
	return sig(n)
}

// Commutative reports whether a composition operator is insensitive to
// operand order, bit for bit.
func Commutative(g valueset.Gamma) bool {
	switch g {
	case valueset.Add, valueset.Mul, valueset.Sup, valueset.Inf:
		return true
	}
	return false
}

// ShortSig renders an 8-hex-digit digest of a plan's signature for display
// (EXPLAIN annotations, /stats, logs).
func ShortSig(n Node) string { return ShortSigOf(Signature(n)) }

// ShortSigOf digests an already-computed signature string.
func ShortSigOf(sig string) string {
	h := fnv.New32a()
	h.Write([]byte(sig))
	return fmt.Sprintf("%08x", h.Sum32())
}

// Shareable reports whether one plan node may run on a shared trunk.
// Everything deterministic and stateless-per-subscriber is shareable;
// deliberately excluded are the frame-buffered stretch (its fit state is
// per-query product semantics: which frames a subscriber has seen must not
// depend on co-mounted queries joining or leaving) and the aggregates
// (large per-query window/series state, usually query-terminal anyway).
// Unknown node types are conservatively private.
func Shareable(n Node) bool {
	switch n.(type) {
	case *Source, *RestrictS, *RestrictT, *RestrictV, *MapFn, *Fused,
		*Zoom, *Reproject, *Rotate, *Filter, *ComposeOp:
		return true
	}
	return false
}

// ShareFrontier returns the maximal fully-shareable subtrees of a plan, in
// the deterministic order a pre-order walk discovers them. Every Source
// lies inside some frontier subtree (sources are shareable leaves), so a
// query built on its frontier mounts needs no private source subscriptions.
// Pointer-shared subtrees are reported once.
func ShareFrontier(n Node) []Node {
	all := map[Node]bool{}
	var mark func(Node) bool
	mark = func(n Node) bool {
		if v, ok := all[n]; ok {
			return v
		}
		ok := Shareable(n)
		for _, c := range n.Children() {
			if !mark(c) {
				ok = false
			}
		}
		all[n] = ok
		return ok
	}
	mark(n)

	var out []Node
	seen := map[Node]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if all[n] {
			out = append(out, n)
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}
