package query

import (
	"context"
	"math"
	"strings"
	"testing"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

func TestParseFilters(t *testing.T) {
	cases := []struct{ src, label string }{
		{"boxfilter(nir, 3)", "boxfilter(3)"},
		{"gaussfilter(nir, 5, 1.5)", "gaussfilter(5, 1.5)"},
		{"gradient(nir)", "gradient()"},
		{"gammac(nir, 2, 0, 1023)", "map(gammac(2, 0, 1023))"},
	}
	for _, c := range cases {
		n := mustParse(t, c.src)
		if n.Label() != c.label {
			t.Errorf("Parse(%q).Label() = %q, want %q", c.src, n.Label(), c.label)
		}
	}
	bad := []string{
		"boxfilter(nir, 4)",        // even
		"boxfilter(nir, 1)",        // too small
		"gaussfilter(nir, 5, 0)",   // zero sigma
		"gaussfilter(nir, 5.5, 1)", // non-integer
		"gradient()",               // missing stream
		"gammac(nir, 0, 0, 1)",     // non-positive gamma
	}
	for _, src := range bad {
		if _, err := Parse(src, testBands); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestFilterEndToEnd(t *testing.T) {
	g := stream.NewGroup(context.Background())
	catalog, sources, _ := testCatalog(t, g, 24, 20, 1)
	plan := mustParse(t, "boxfilter(vis, 3)")
	if err := Validate(plan, catalog); err != nil {
		t.Fatal(err)
	}
	out, _, err := Build(g, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	// The nir band is unused; drain it so the imager can finish.
	go stream.Drain(context.Background(), sources["nir"]) //nolint:errcheck
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range chunks {
		c.ForEachPoint(func(_ geom.Point, v float64) {
			if !math.IsNaN(v) {
				n++
			}
		})
	}
	if n != 24*20 {
		t.Fatalf("filtered points = %d, want %d", n, 24*20)
	}
}

func TestFilterPushdownWidensRegion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := stream.NewGroup(ctx)
	catalog, _, _ := testCatalog(t, g, 16, 16, 1)
	cancel()
	defer g.Wait() //nolint:errcheck

	plan := mustParse(t, "rselect(boxfilter(vis, 5), rect(-121.5, 36.5, -120.5, 37.5))")
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Exact restriction on top, widened restriction below the filter.
	top, ok := opt.(*RestrictS)
	if !ok {
		t.Fatalf("top = %s", opt.Label())
	}
	f, ok := top.In.(*Filter)
	if !ok {
		t.Fatalf("below top = %s", top.In.Label())
	}
	inner, ok := f.In.(*RestrictS)
	if !ok {
		t.Fatalf("below filter = %s", Format(opt))
	}
	// The widened region strictly contains the original.
	if !inner.Region.Bounds().ContainsRect(top.Region.Bounds()) {
		t.Fatal("widened region must contain the original")
	}
	if inner.Region.Bounds() == top.Region.Bounds() {
		t.Fatal("inner region must actually be widened")
	}
}

func TestFilterExplainShowsRowCost(t *testing.T) {
	lat, err := geom.NewLattice(0, 10, 0.1, -0.1, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]stream.Info{
		"nir": {Band: "nir", CRS: coord.LatLon{}, VMax: 1023,
			SectorGeom: lat, HasSectorMeta: true},
	}
	exp, err := Explain(mustParse(t, "gradient(boxfilter(nir, 3))"), catalog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp, "O(rows)") {
		t.Fatalf("explain missing row-class cost:\n%s", exp)
	}
}
