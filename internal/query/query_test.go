package query

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
	"geostreams/internal/valueset"
)

var testBands = map[string]bool{"nir": true, "vis": true, "ir": true}

func mustParse(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse(src, testBands)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestLexer(t *testing.T) {
	toks, err := lex(`rselect(nir, rect(-1.5, 2, 3e2, .5)) "utm:10"`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	want := []tokenKind{
		tokIdent, tokLParen, tokIdent, tokComma, tokIdent, tokLParen,
		tokMinus, tokNumber, tokComma, tokNumber, tokComma, tokNumber,
		tokComma, tokNumber, tokRParen, tokRParen, tokString, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Scientific notation and identifiers with colons.
	toks, err = lex("3.5e-2 utm:10n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].num != 0.035 || toks[1].text != "utm:10n" {
		t.Fatalf("lex values: %+v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "§", "1.2.3"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) must fail", src)
		}
	}
}

func TestParseSimpleQueries(t *testing.T) {
	cases := []struct {
		src  string
		want string // top-level label prefix
	}{
		{"nir", "nir"},
		{"rselect(nir, rect(0, 0, 10, 10))", "rselect"},
		{"tselect(nir, interval(0, 100))", "tselect"},
		{"vselect(nir, range(0, 500))", "vselect"},
		{"scale(nir, 2, 1)", "map"},
		{"stretch(nir, linear, 0, 255)", "stretch(linear"},
		{"zoomin(nir, 2)", "zoomin(2)"},
		{"zoomout(nir, 4)", "zoomout(4)"},
		{`reproject(nir, "utm:10")`, "reproject(utm:10n"},
		{"rotate(nir, 90)", "rotate(90)"},
		{"nir - vis", "compose(-)"},
		{"nir / vis", "compose(/)"},
		{"sup(nir, vis)", "compose(sup)"},
		{"ndvi(nir, vis)", "compose(/)"},
		{"agg_t(nir, mean, 4)", "agg_t(mean, 4)"},
		{"agg_r(nir, max, disk(0, 0, 5))", "agg_r(max"},
		{"(nir - vis) / (nir + vis)", "compose(/)"},
	}
	for _, c := range cases {
		n := mustParse(t, c.src)
		if !strings.HasPrefix(n.Label(), c.want) {
			t.Errorf("Parse(%q).Label() = %q, want prefix %q", c.src, n.Label(), c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// a - b / c must parse as a - (b / c).
	n := mustParse(t, "nir - vis / ir")
	top, ok := n.(*ComposeOp)
	if !ok || top.Gamma != valueset.Sub {
		t.Fatalf("top = %s", n.Label())
	}
	if r, ok := top.R.(*ComposeOp); !ok || r.Gamma != valueset.Div {
		t.Fatalf("rhs = %s", top.R.Label())
	}
	// Parens override.
	n = mustParse(t, "(nir - vis) / ir")
	if top, ok := n.(*ComposeOp); !ok || top.Gamma != valueset.Div {
		t.Fatalf("paren top = %s", n.Label())
	}
	// Constant folding: numbers combine at parse time.
	n = mustParse(t, "scale(nir, 2 * 3, 1 + 1)")
	if !strings.Contains(n.Label(), "scale(6, 2)") {
		t.Fatalf("folded label = %s", n.Label())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"bogusband",
		"unknownfn(nir)",
		"rselect(nir)",
		"rselect(rect(0,0,1,1), nir)", // swapped args
		"rect(0,0,1,1) + nir",         // region arithmetic
		"nir + 3",                     // stream + number
		"zoomin(nir, 2.5)",
		"zoomin(nir, 1)",
		"stretch(nir, sideways, 0, 255)",
		`reproject(nir, "utm:99")`,
		"polygon(0,0, 1,1)", // too few vertices
		"recurring(0, 0, 1)",
		"range(5, 1)",
		"rselect(nir, rect(0,0,1,1)", // unbalanced paren
		"agg_t(nir, median, 3)",
		"-nir",
		"instants()",
	}
	for _, src := range cases {
		if _, err := Parse(src, testBands); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParseRegionTimeValueSpecs(t *testing.T) {
	n := mustParse(t, "rselect(nir, polygon(0,0, 4,0, 4,4, 0,4))")
	rs := n.(*RestrictS)
	if !rs.Region.Contains(geom.V2(2, 2)) || rs.Region.Contains(geom.V2(5, 5)) {
		t.Fatal("polygon region wrong")
	}
	n = mustParse(t, "tselect(nir, recurring(24, 6, 4))")
	rt := n.(*RestrictT)
	if !rt.Times.Contains(7) || rt.Times.Contains(12) {
		t.Fatal("recurring time set wrong")
	}
	n = mustParse(t, "vselect(nir, above(100))")
	rv := n.(*RestrictV)
	if !rv.Set.Contains(101) || rv.Set.Contains(100) {
		t.Fatal("above set wrong")
	}
	n = mustParse(t, "tselect(nir, instants(3, 5))")
	if !n.(*RestrictT).Times.Contains(5) {
		t.Fatal("instants wrong")
	}
	n = mustParse(t, "rselect(nir, world())")
	if !n.(*RestrictS).Region.Contains(geom.V2(1e9, -1e9)) {
		t.Fatal("world region wrong")
	}
}

// testCatalog builds a catalog + live sources over a synthetic imager.
func testCatalog(t *testing.T, g *stream.Group, w, h, sectors int) (map[string]stream.Info, map[string]*stream.Stream, geom.Lattice) {
	t.Helper()
	scene := sat.DefaultScene(42)
	im, err := sat.NewLatLonImager(geom.R(-122, 36, -120, 38), w, h, scene,
		[]string{"vis", "nir"}, stream.RowByRow, sectors)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]stream.Info{
		"vis": im.Info(im.Bands[0]),
		"nir": im.Info(im.Bands[1]),
	}
	return catalog, streams, im.Sector
}

func TestBuildAndRunPaperQuery(t *testing.T) {
	// The §3.4 running example: NDVI, stretch, re-project to UTM, restrict
	// to a region of interest (region in UTM coordinates).
	g := stream.NewGroup(context.Background())
	catalog, sources, _ := testCatalog(t, g, 24, 20, 1)

	// UTM zone 10 coordinates of the center of the scene.
	ll := coord.LatLon{}
	utm := coord.MustParse("utm:10")
	c, err := coord.Transform(ll, utm, geom.V2(-121, 37))
	if err != nil {
		t.Fatal(err)
	}
	q := `rselect(
	        reproject(
	          stretch((nir - vis) / (nir + vis), linear, 0, 255),
	          "utm:10"),
	        rect(` +
		formatF(c.X-40000) + `, ` + formatF(c.Y-40000) + `, ` +
		formatF(c.X+40000) + `, ` + formatF(c.Y+40000) + `))`

	plan := mustParse(t, q)
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Build(g, opt, sources)
	if err != nil {
		t.Fatal(err)
	}
	if out.Info.CRS.Name() != "utm:10n" {
		t.Fatalf("output CRS = %s", out.Info.CRS.Name())
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	valid := 0
	for _, ch := range chunks {
		ch.ForEachPoint(func(p geom.Point, v float64) {
			if math.IsNaN(v) {
				return
			}
			valid++
			if v < -0.001 || v > 255.001 {
				t.Fatalf("stretched value %g out of range", v)
			}
			// All surviving points lie in the UTM region of interest.
			if p.S.X < c.X-40001 || p.S.X > c.X+40001 || p.S.Y < c.Y-40001 || p.S.Y > c.Y+40001 {
				t.Fatalf("point %v escaped the restriction", p.S)
			}
		})
	}
	if valid == 0 {
		t.Fatal("query produced no data")
	}
	if len(stats) == 0 {
		t.Fatal("no operator stats collected")
	}
}

func formatF(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}

func TestOptimizePushesThroughReprojection(t *testing.T) {
	// The sources are never consumed here (plan-only test): cancel the
	// parent context so the generators unwind.
	ctx, cancel := context.WithCancel(context.Background())
	g := stream.NewGroup(ctx)
	catalog, _, _ := testCatalog(t, g, 8, 8, 1)
	cancel()
	defer g.Wait() //nolint:errcheck

	plan := mustParse(t, `rselect(reproject(nir, "utm:10"), rect(500000, 4000000, 600000, 4200000))`)
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: rselect(reproject(rselect(nir, mapped-region))).
	top, ok := opt.(*RestrictS)
	if !ok {
		t.Fatalf("top = %s", opt.Label())
	}
	rp, ok := top.In.(*Reproject)
	if !ok {
		t.Fatalf("below top = %s", top.In.Label())
	}
	inner, ok := rp.In.(*RestrictS)
	if !ok {
		t.Fatalf("below reproject = %s (restriction not pushed)", rp.In.Label())
	}
	if _, ok := inner.In.(*Source); !ok {
		t.Fatalf("below inner restrict = %s", inner.In.Label())
	}
	// The mapped region must be in latlon coordinates (small numbers).
	b := inner.Region.Bounds()
	if b.MinX < -180 || b.MaxX > 180 {
		t.Fatalf("mapped region bounds look unmapped: %v", b)
	}
}

func TestOptimizeMergesRestrictions(t *testing.T) {
	plan := mustParse(t, "rselect(rselect(nir, rect(0,0,10,10)), rect(5,5,15,15))")
	opt, err := Optimize(plan, map[string]stream.Info{"nir": {CRS: coord.LatLon{}, VMax: 1}})
	if err != nil {
		t.Fatal(err)
	}
	top, ok := opt.(*RestrictS)
	if !ok {
		t.Fatalf("top = %s", opt.Label())
	}
	if _, ok := top.In.(*Source); !ok {
		t.Fatalf("restrictions not merged: %s", Format(opt))
	}
	if top.Region.Contains(geom.V2(2, 2)) || !top.Region.Contains(geom.V2(7, 7)) {
		t.Fatal("merged region semantics wrong")
	}
}

func TestOptimizePushesThroughCompose(t *testing.T) {
	catalog := map[string]stream.Info{
		"nir": {CRS: coord.LatLon{}, VMax: 1},
		"vis": {CRS: coord.LatLon{}, VMax: 1},
	}
	plan := mustParse(t, "rselect(nir - vis, rect(0,0,1,1))")
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := opt.(*ComposeOp)
	if !ok {
		t.Fatalf("top = %s", opt.Label())
	}
	if _, ok := top.L.(*RestrictS); !ok {
		t.Fatalf("left input not restricted: %s", Format(opt))
	}
	if _, ok := top.R.(*RestrictS); !ok {
		t.Fatalf("right input not restricted: %s", Format(opt))
	}
}

func TestOptimizePushesTemporalToSources(t *testing.T) {
	catalog := map[string]stream.Info{
		"nir": {CRS: coord.LatLon{}, VMax: 1},
		"vis": {CRS: coord.LatLon{}, VMax: 1},
	}
	plan := mustParse(t, "tselect(scale(nir - vis, 1, 0), interval(0, 10))")
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	// Expect map(compose(tselect(nir), tselect(vis))).
	mp, ok := opt.(*MapFn)
	if !ok {
		t.Fatalf("top = %s", opt.Label())
	}
	cmp, ok := mp.In.(*ComposeOp)
	if !ok {
		t.Fatalf("below map = %s", mp.In.Label())
	}
	if _, ok := cmp.L.(*RestrictT); !ok {
		t.Fatalf("temporal restriction not at left source: %s", Format(opt))
	}
	if _, ok := cmp.R.(*RestrictT); !ok {
		t.Fatalf("temporal restriction not at right source: %s", Format(opt))
	}
}

// Optimized and unoptimized plans must produce identical data points.
func TestOptimizeSemanticEquivalence(t *testing.T) {
	run := func(optimize bool) map[geom.Vec2]float64 {
		g := stream.NewGroup(context.Background())
		catalog, sources, _ := testCatalog(t, g, 20, 16, 2)
		plan := mustParse(t, "rselect(scale(nir - vis, 2, 5), rect(-121.6, 36.4, -120.4, 37.6))")
		if optimize {
			var err error
			if plan, err = Optimize(plan, catalog); err != nil {
				t.Fatal(err)
			}
		}
		out, _, err := Build(g, plan, sources)
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := stream.Collect(context.Background(), out)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		pts := map[geom.Vec2]float64{}
		for _, c := range chunks {
			c.ForEachPoint(func(p geom.Point, v float64) {
				if !math.IsNaN(v) {
					pts[p.S] = v
				}
			})
		}
		return pts
	}
	plain := run(false)
	opt := run(true)
	if len(plain) == 0 {
		t.Fatal("query produced nothing")
	}
	if len(plain) != len(opt) {
		t.Fatalf("optimized plan changed cardinality: %d vs %d", len(plain), len(opt))
	}
	for p, v := range plain {
		ov, ok := opt[p]
		if !ok || math.Abs(ov-v) > 1e-9 {
			t.Fatalf("optimized plan differs at %v: %g vs %g", p, v, ov)
		}
	}
}

func TestNDVISharedSubtreesTee(t *testing.T) {
	// ndvi(nir, vis) consumes each band twice via shared node pointers;
	// the planner must tee and the pipeline must complete.
	g := stream.NewGroup(context.Background())
	catalog, sources, _ := testCatalog(t, g, 10, 8, 1)
	_ = catalog
	plan := mustParse(t, "ndvi(nir, vis)")
	out, _, err := Build(g, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range chunks {
		c.ForEachPoint(func(_ geom.Point, v float64) {
			if !math.IsNaN(v) {
				n++
				if v < -1.001 || v > 1.001 {
					t.Fatalf("NDVI %g out of [-1, 1]", v)
				}
			}
		})
	}
	if n == 0 {
		t.Fatal("ndvi produced nothing")
	}
}

func TestValidateAndExplain(t *testing.T) {
	catalog := map[string]stream.Info{
		"nir": {Band: "nir", CRS: coord.LatLon{}, VMax: 1023},
		"vis": {Band: "vis", CRS: coord.MustParse("utm:10"), VMax: 1023},
	}
	// Composition across coordinate systems must fail validation.
	plan := mustParse(t, "nir - vis")
	if err := Validate(plan, catalog); err == nil {
		t.Fatal("cross-CRS composition must fail validation")
	}
	// Unknown band.
	if err := Validate(&Source{Band: "swir"}, catalog); err == nil {
		t.Fatal("unknown band must fail validation")
	}
	// Explain renders cost classes.
	lat, err := geom.NewLattice(0, 10, 0.1, -0.1, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	catalog2 := map[string]stream.Info{
		"nir": {Band: "nir", CRS: coord.LatLon{}, VMax: 1023, SectorGeom: lat, HasSectorMeta: true},
		"vis": {Band: "vis", CRS: coord.LatLon{}, VMax: 1023, SectorGeom: lat, HasSectorMeta: true},
	}
	plan = mustParse(t, `rselect(stretch(nir - vis, linear, 0, 255), rect(0, 0, 5, 5))`)
	exp, err := Explain(plan, catalog2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rselect", "stretch", "compose(-)", "O(1)", "O(frame)"} {
		if !strings.Contains(exp, want) {
			t.Fatalf("explain output missing %q:\n%s", want, exp)
		}
	}
}

func TestBuildMissingSource(t *testing.T) {
	g := stream.NewGroup(context.Background())
	plan := mustParse(t, "nir")
	if _, _, err := Build(g, plan, map[string]*stream.Stream{}); err == nil {
		t.Fatal("missing source must fail")
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func mustLatLon() coord.CRS { return coord.LatLon{} }
