package query

import (
	"testing"

	"geostreams/internal/geom"
)

func TestHistoryStart(t *testing.T) {
	mustParse := func(s string) Node {
		n, err := Parse(s, map[string]bool{"vis": true})
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return n
	}
	cases := []struct {
		text       string
		start      geom.Timestamp
		restricted bool
	}{
		{"vis", 0, false},
		{"tselect(vis, interval(3, 9))", 3, true},
		{"tselect(vis, since(7))", 7, true},
		{"tselect(vis, instants(5, 2, 11))", 2, true},
		{"tselect(vis, alltime())", geom.EarliestStart, true},
		{"tselect(vis, recurring(24, 6, 2))", geom.EarliestStart, true},
		// Nested restrictions: the walk is conservative (min across all
		// RestrictT nodes), never missing history a restriction needs.
		{"tselect(tselect(vis, since(4)), instants(9))", 4, true},
	}
	for _, c := range cases {
		start, restricted := HistoryStart(mustParse(c.text))
		if restricted != c.restricted || (restricted && start != c.start) {
			t.Errorf("HistoryStart(%q) = %d,%v want %d,%v",
				c.text, start, restricted, c.start, c.restricted)
		}
	}
}

func TestEarliestTimeIntersect(t *testing.T) {
	ts := geom.IntersectTime(geom.NewInterval(3, 99), geom.Since(10))
	if e := geom.EarliestTime(ts); e != 10 {
		t.Fatalf("intersect earliest = %d, want 10", e)
	}
	if e := geom.EarliestTime(geom.NewInstants()); e != geom.OpenEnd {
		t.Fatalf("empty instants earliest = %d, want OpenEnd", e)
	}
}
