package query

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"geostreams/internal/exec"
	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
)

// fuseTestQueries are the point-wise chains the fusion pass targets, plus
// shapes that must act as fusion boundaries (zooms, restrictions on space,
// binary compositions).
var fuseTestQueries = []string{
	"clamp(scale(nir, 2, 10), -1000, 1000)",
	"scale(vselect(clamp(nir, 0, 900), range(100, 800)), 0.5, 0)",
	"clamp(scale(ndvi(nir, vis), 100, 0), -50, 50)",
	"vselect(scale(zoomin(clamp(nir, 0, 1000), 2), 1.5, 0), range(0, 1500))",
	"rselect(clamp(scale(nir, 2, 0), 0, 2000), rect(-121.8, 36.2, -120.2, 37.8))",
	"clamp(scale(clamp(scale(vis, 1.5, 3), 0, 2000), 0.25, -1), 0, 400)",
}

// runFusePlan executes a query over a fresh deterministic image-by-image
// workload — sectors large enough to clear exec.ParallelCutoff — and
// returns the raw output chunk sequence. fuse selects whether the fusion
// pass runs after optimization.
func runFusePlan(q string, fuse bool) ([]*stream.Chunk, error) {
	g := stream.NewGroup(context.Background())
	scene := sat.DefaultScene(20060406)
	im, err := sat.NewLatLonImager(geom.R(-122, 36, -120, 38), 160, 128, scene,
		[]string{"nir", "vis"}, stream.ImageByImage, 2)
	if err != nil {
		return nil, err
	}
	sources, err := im.Streams(g)
	if err != nil {
		return nil, err
	}
	catalog := map[string]stream.Info{
		"nir": im.Info(im.Bands[0]),
		"vis": im.Info(im.Bands[1]),
	}
	plan, err := Parse(q, testBands)
	if err != nil {
		return nil, fmt.Errorf("Parse(%q): %w", q, err)
	}
	if plan, err = Optimize(plan, catalog); err != nil {
		return nil, fmt.Errorf("Optimize(%q): %w", q, err)
	}
	if fuse {
		plan = Fuse(plan)
	}
	used := Bands(plan)
	for band, s := range sources {
		if used[band] == 0 {
			go stream.Drain(context.Background(), s) //nolint:errcheck
		}
	}
	out, _, err := Build(g, plan, sources)
	if err != nil {
		return nil, fmt.Errorf("Build(%q): %w", q, err)
	}
	chunks, err := stream.Collect(context.Background(), out)
	if err != nil {
		return nil, err
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return chunks, nil
}

// sameChunks checks two output chunk sequences are bit-identical:
// same chunk boundaries, same lattices and timestamps, and for every value
// the same float64 bits (NaN matches NaN).
func sameChunks(q string, want, got []*stream.Chunk) error {
	sameVal := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) && math.IsNaN(b)
		}
		return math.Float64bits(a) == math.Float64bits(b)
	}
	if len(want) != len(got) {
		return fmt.Errorf("%q: chunk count %d vs %d", q, len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Kind != b.Kind || a.T != b.T {
			return fmt.Errorf("%q: chunk %d header (%v, t=%d) vs (%v, t=%d)",
				q, i, a.Kind, a.T, b.Kind, b.T)
		}
		switch a.Kind {
		case stream.KindGrid:
			if a.Grid.Lat != b.Grid.Lat || len(a.Grid.Vals) != len(b.Grid.Vals) {
				return fmt.Errorf("%q: chunk %d lattice mismatch", q, i)
			}
			for j := range a.Grid.Vals {
				if !sameVal(a.Grid.Vals[j], b.Grid.Vals[j]) {
					return fmt.Errorf("%q: chunk %d value %d: %v vs %v",
						q, i, j, a.Grid.Vals[j], b.Grid.Vals[j])
				}
			}
		case stream.KindPoints:
			if len(a.Points) != len(b.Points) {
				return fmt.Errorf("%q: chunk %d point count %d vs %d",
					q, i, len(a.Points), len(b.Points))
			}
			for j := range a.Points {
				if a.Points[j].P != b.Points[j].P || !sameVal(a.Points[j].V, b.Points[j].V) {
					return fmt.Errorf("%q: chunk %d point %d mismatch", q, i, j)
				}
			}
		}
	}
	return nil
}

// TestFusedParallelBitIdentical is the engine's central property: the
// fused plan running on parallel kernels produces exactly the chunk
// sequence of the unfused plan on scalar kernels — same chunk boundaries,
// same bits — so neither fusion nor the worker pool is observable in the
// data.
func TestFusedParallelBitIdentical(t *testing.T) {
	defer exec.SetParallelism(0)
	for _, q := range fuseTestQueries {
		exec.SetParallelism(1)
		want, err := runFusePlan(q, false)
		if err != nil {
			t.Fatal(err)
		}
		// Force the parallel path even on single-core CI machines.
		exec.SetParallelism(4)
		got, err := runFusePlan(q, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameChunks(q, want, got); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFusePassProducesFusedNodes guards against the fusion pass silently
// degrading to a no-op: every chain query above must contain a fused node
// after Fuse, and single point-wise stages must not be wrapped.
func TestFusePassProducesFusedNodes(t *testing.T) {
	catalog := map[string]stream.Info{
		"nir": {Band: "nir", CRS: mustLatLon(), VMax: 1023},
		"vis": {Band: "vis", CRS: mustLatLon(), VMax: 1023},
	}
	for _, q := range fuseTestQueries[:3] {
		plan, err := Parse(q, testBands)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(plan, catalog)
		if err != nil {
			t.Fatal(err)
		}
		if f := Format(Fuse(opt)); !strings.Contains(f, "fused(") {
			t.Fatalf("no fused node in plan for %q:\n%s", q, f)
		}
	}
	plan, err := Parse("scale(ndvi(nir, vis), 2, 0)", testBands)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if f := Format(Fuse(opt)); strings.Contains(f, "fused(") {
		t.Fatalf("single point-wise stage must not be fused:\n%s", f)
	}
}

// TestConcurrentFusedQueriesSharedPool stresses the process-wide worker
// pool and the shared buffer allocator under -race: several fused parallel
// queries run concurrently and each must still reproduce the scalar
// unfused reference bits.
func TestConcurrentFusedQueriesSharedPool(t *testing.T) {
	defer exec.SetParallelism(0)
	q := fuseTestQueries[2] // chain over the NDVI composition
	exec.SetParallelism(1)
	want, err := runFusePlan(q, false)
	if err != nil {
		t.Fatal(err)
	}
	exec.SetParallelism(4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := runFusePlan(q, true)
			if err == nil {
				err = sameChunks(q, want, got)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
