package query

import "geostreams/internal/geom"

// CascadeRoutable reports whether a plan node is a spatial-restriction
// frontier the shared cascade router can absorb: a rectangular rselect
// sitting directly on a band source. That is exactly the shape the
// optimizer's push-down produces for cropped queries (rselect pushed below
// every transform until it rests on the source), so after Optimize+Fuse
// every pushed-down crop is routable.
//
// Routable nodes don't run as their own trunk operator: the per-band router
// registers the rect in a cascade index, probes each incoming chunk's
// bounds once for all registered rects, and crops matched chunks — one
// shared restriction stage instead of N per-query scans (§4's dynamic
// cascade tree). Non-rect regions and rselects over composed inputs keep
// the ordinary trunk path; the algebra is unchanged either way.
func CascadeRoutable(n Node) (band string, region geom.RectRegion, ok bool) {
	rs, ok := n.(*RestrictS)
	if !ok {
		return "", geom.RectRegion{}, false
	}
	src, ok := rs.In.(*Source)
	if !ok {
		return "", geom.RectRegion{}, false
	}
	rr, ok := rs.Region.(geom.RectRegion)
	if !ok {
		return "", geom.RectRegion{}, false
	}
	return src.Band, rr, true
}
