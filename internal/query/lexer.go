package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates the lexical classes of the query language.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError reports a lexical or grammatical error with its byte offset.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes a query string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, pos: i})
			i++
		case c == '/':
			toks = append(toks, token{kind: tokSlash, pos: i})
			i++
		case c == '-':
			// Could be a minus operator or the sign of a number literal;
			// the parser disambiguates, the lexer always emits minus and
			// lets number parsing absorb signs after '(', ',' and
			// operators.
			toks = append(toks, token{kind: tokMinus, pos: i})
			i++
		case c == '"':
			j := strings.IndexByte(src[i+1:], '"')
			if j < 0 {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			v, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("bad number %q", src[i:j])}
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: v, pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '_' || src[j] == ':') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
