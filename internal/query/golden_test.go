package query

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
)

var updateGolden = flag.Bool("update", false, "rewrite the Explain golden files")

// goldenCatalog is a fixed, fully deterministic catalog: the Explain output
// embeds the stream Info rendering, so any drift in it shows up in the diff.
func goldenCatalog(t *testing.T) map[string]stream.Info {
	t.Helper()
	scene := sat.DefaultScene(42)
	im, err := sat.NewLatLonImager(geom.R(-122, 36, -120, 38), 24, 20, scene,
		[]string{"vis", "nir"}, stream.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]stream.Info{
		"vis": im.Info(im.Bands[0]),
		"nir": im.Info(im.Bands[1]),
	}
}

// TestExplainGolden locks the Explain rendering — naive, optimized, fused,
// and shared-annotated — against golden files. Regenerate intentionally with
//
//	go test ./internal/query/ -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	catalog := goldenCatalog(t)
	const src = "rselect(stretch(ndvi(nir, vis), linear, 0, 255), rect(-121.6, 36.4, -120.4, 37.6))"
	plan := mustParse(t, src)

	opt, err := Optimize(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	fused := Fuse(opt)

	// Shared annotation: every operator inside a shareable frontier subtree
	// is tagged with the digest of the trunk node it would mount on.
	inTrunk := map[Node]string{}
	for _, root := range ShareFrontier(fused) {
		var mark func(Node)
		mark = func(n Node) {
			if _, ok := inTrunk[n]; ok {
				return
			}
			inTrunk[n] = "[shared " + ShortSig(n) + "]"
			for _, c := range n.Children() {
				mark(c)
			}
		}
		mark(root)
	}

	cases := []struct {
		name   string
		render func() (string, error)
	}{
		{"naive", func() (string, error) { return Explain(plan, catalog) }},
		{"optimized", func() (string, error) { return Explain(opt, catalog) }},
		{"fused", func() (string, error) { return Explain(fused, catalog) }},
		{"shared", func() (string, error) {
			return ExplainAnnotated(fused, catalog, func(n Node) string { return inTrunk[n] })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("Explain %s drifted from golden file:\n--- got ---\n%s--- want ---\n%s(run with -update to accept)",
					tc.name, got, want)
			}
		})
	}
}
