package query

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

// This file is the shared core of the algebraic equivalence harness: a
// random plan generator and a bit-exact output fingerprint. The property
// tests here, the shared-execution tests in internal/share, and the E-S1
// experiment all compare plan variants (naive vs optimized+fused vs
// shared-trunk) through the same Fingerprint, so "equivalent" means the
// same thing everywhere: identical value bits at identical points, and the
// same punctuation sequence.

// RandPlanText generates a random query string over the bands nir/vis: a
// pipeline of random unary operators over a leaf that may itself be a
// binary composition (including commutative forms, so signature
// normalization gets exercised). With allowStretch the plan may gain a
// stretch stage — excluded from optimizer-equivalence runs because pushing
// restrictions below a stretch legitimately changes its fit window (§3
// product semantics), and from shared trunks because that state is
// per-query.
func RandPlanText(rng *rand.Rand, allowStretch bool) string {
	leaf := func() string {
		switch rng.Intn(8) {
		case 0:
			return "nir"
		case 1:
			return "vis"
		case 2:
			return "(nir - vis)"
		case 3:
			return "(nir + vis)"
		case 4:
			return "(nir * vis)"
		case 5:
			return "sup(nir, vis)"
		case 6:
			return "inf(vis, nir)"
		default:
			return "ndvi(nir, vis)"
		}
	}
	q := leaf()
	depth := 1 + rng.Intn(3)
	for i := 0; i < depth; i++ {
		switch rng.Intn(9) {
		case 0:
			q = fmt.Sprintf("rselect(%s, rect(%g, %g, %g, %g))", q,
				-122+rng.Float64(), 36+rng.Float64(),
				-121+rng.Float64(), 37+rng.Float64())
		case 1:
			q = fmt.Sprintf("tselect(%s, interval(0, %d))", q, 1+rng.Intn(3))
		case 2:
			q = fmt.Sprintf("vselect(%s, range(%d, %d))", q, -2000, 2000)
		case 3:
			q = fmt.Sprintf("scale(%s, %g, %g)", q, 0.5+rng.Float64(), rng.Float64()*10)
		case 4:
			q = fmt.Sprintf("clamp(%s, -1000, 1000)", q)
		case 5:
			q = fmt.Sprintf("zoomin(%s, 2)", q)
		case 6:
			q = fmt.Sprintf("zoomout(%s, 2)", q)
		case 7:
			q = fmt.Sprintf("boxfilter(%s, 3)", q)
		case 8:
			q = fmt.Sprintf("gammac(%s, %g, 0, 1000)", q, 1+rng.Float64())
		}
	}
	if allowStretch && rng.Intn(3) == 0 {
		q = fmt.Sprintf("stretch(%s, linear, 0, 255)", q)
	}
	if rng.Intn(2) == 0 {
		q = fmt.Sprintf("rselect(%s, rect(-121.8, 36.2, -120.2, 37.8))", q)
	}
	return q
}

// PointKey identifies a data point by micro-degree-quantized location and
// exact timestamp. Locations are quantized because structurally different
// but equivalent plan shapes (teed vs rebuilt subtrees, shared vs private
// operators) can differ in the last ulp of derived lattice origins; values
// are never quantized.
type PointKey [3]int64

// Key quantizes a point's location into its fingerprint key.
func Key(p geom.Point) PointKey {
	return PointKey{
		int64(math.Round(p.S.X * 1e6)),
		int64(math.Round(p.S.Y * 1e6)),
		int64(p.T),
	}
}

// canonicalNaN collapses every NaN payload to one bit pattern: operators
// may produce differently-payloaded NaNs through algebraically identical
// routes, and IEEE 754 does not order NaN payloads.
var canonicalNaN = math.Float64bits(math.NaN())

// Fingerprint is the bit-exact observable output of one query execution:
// every data point's value bits by location/time, and the ordered
// punctuation (end-of-sector) timestamps. Two executions of equivalent
// plans over the same input must produce equal fingerprints.
type Fingerprint struct {
	Values map[PointKey]uint64
	Punct  []geom.Timestamp
}

// FingerprintChunks folds an execution's collected output chunks into a
// fingerprint.
func FingerprintChunks(chunks []*stream.Chunk) Fingerprint {
	fp := Fingerprint{Values: map[PointKey]uint64{}}
	for _, c := range chunks {
		if c.Kind == stream.KindEndOfSector {
			fp.Punct = append(fp.Punct, c.T)
			continue
		}
		c.ForEachPoint(func(p geom.Point, v float64) {
			bits := math.Float64bits(v)
			if math.IsNaN(v) {
				bits = canonicalNaN
			}
			fp.Values[Key(p)] = bits
		})
	}
	return fp
}

// Diff reports the first discrepancy between two fingerprints, or "" when
// they are bit-identical. `a` and `b` name the two executions in messages.
func (fp Fingerprint) Diff(other Fingerprint, a, b string) string {
	if len(fp.Punct) != len(other.Punct) {
		return fmt.Sprintf("punctuation count: %s has %d, %s has %d",
			a, len(fp.Punct), b, len(other.Punct))
	}
	for i := range fp.Punct {
		if fp.Punct[i] != other.Punct[i] {
			return fmt.Sprintf("punctuation %d: %s at t=%d, %s at t=%d",
				i, a, fp.Punct[i], b, other.Punct[i])
		}
	}
	if len(fp.Values) != len(other.Values) {
		return fmt.Sprintf("point count: %s has %d, %s has %d",
			a, len(fp.Values), b, len(other.Values))
	}
	// Deterministic iteration so a persistent mismatch reports stably.
	keys := make([]PointKey, 0, len(fp.Values))
	for k := range fp.Values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[2] != b[2] {
			return a[2] < b[2]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[0] < b[0]
	})
	for _, k := range keys {
		ov, ok := other.Values[k]
		if !ok {
			return fmt.Sprintf("point %v: present in %s, missing in %s", k, a, b)
		}
		if v := fp.Values[k]; v != ov {
			return fmt.Sprintf("point %v: %s=%g (%016x), %s=%g (%016x)",
				k, a, math.Float64frombits(v), v, b, math.Float64frombits(ov), ov)
		}
	}
	return ""
}
