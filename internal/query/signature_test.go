package query

import (
	"testing"
)

func TestSignatureCommutativeNormalization(t *testing.T) {
	same := [][2]string{
		{"nir + vis", "vis + nir"},
		{"nir * vis", "vis * nir"},
		{"sup(nir, vis)", "sup(vis, nir)"},
		{"inf(nir, vis)", "inf(vis, nir)"},
		{"scale(nir + vis, 2, 0)", "scale(vis + nir, 2, 0)"},
		// Nested: the normalization applies at every level.
		{"(nir + vis) * (vis + nir)", "(vis + nir) * (nir + vis)"},
	}
	for _, pair := range same {
		a, b := mustParse(t, pair[0]), mustParse(t, pair[1])
		if Signature(a) != Signature(b) {
			t.Errorf("Signature(%q) != Signature(%q):\n%s\nvs\n%s",
				pair[0], pair[1], Signature(a), Signature(b))
		}
	}
	diff := [][2]string{
		{"nir - vis", "vis - nir"},
		{"nir / vis", "vis / nir"},
		{"nir + vis", "nir - vis"},
		{"rselect(nir, rect(0, 0, 1, 1))", "rselect(nir, rect(0, 0, 1, 2))"},
		{"scale(nir, 2, 0)", "scale(nir, 3, 0)"},
	}
	for _, pair := range diff {
		a, b := mustParse(t, pair[0]), mustParse(t, pair[1])
		if Signature(a) == Signature(b) {
			t.Errorf("Signature(%q) == Signature(%q) = %s; want distinct",
				pair[0], pair[1], Signature(a))
		}
	}
}

func TestSignatureStableAcrossReparse(t *testing.T) {
	qs := []string{
		"rselect(stretch(ndvi(nir, vis), linear, 0, 255), rect(-121.6, 36.4, -120.4, 37.6))",
		"boxfilter(zoomout(vis, 2), 3)",
		"vselect(scale(nir, 2, 1), range(0, 500))",
	}
	for _, q := range qs {
		a, b := mustParse(t, q), mustParse(t, q)
		if Signature(a) != Signature(b) {
			t.Errorf("Signature of %q not stable across reparse", q)
		}
		if ShortSig(a) != ShortSig(b) {
			t.Errorf("ShortSig of %q not stable across reparse", q)
		}
	}
}

func TestShareFrontierStopsAtStretchAndAggregates(t *testing.T) {
	// stretch is private: the frontier must be the subtree below it.
	n := mustParse(t, "stretch(ndvi(nir, vis), linear, 0, 255)")
	fr := ShareFrontier(n)
	if len(fr) != 1 {
		t.Fatalf("frontier of stretch(ndvi) has %d roots, want 1", len(fr))
	}
	if _, ok := fr[0].(*ComposeOp); !ok {
		t.Fatalf("frontier root below stretch is %T, want *ComposeOp", fr[0])
	}
	// A fully shareable plan is its own single frontier root.
	n2 := mustParse(t, "rselect(ndvi(nir, vis), rect(0, 0, 1, 1))")
	fr2 := ShareFrontier(n2)
	if len(fr2) != 1 || fr2[0] != n2 {
		t.Fatalf("fully shareable plan: frontier = %v, want the root itself", fr2)
	}
	// Aggregates are private; their inputs are shared.
	n3 := mustParse(t, "agg_r(vselect(nir, above(100)), mean, rect(0, 0, 1, 1))")
	fr3 := ShareFrontier(n3)
	if len(fr3) != 1 {
		t.Fatalf("frontier of agg_r has %d roots, want 1", len(fr3))
	}
	if _, ok := fr3[0].(*RestrictV); !ok {
		t.Fatalf("frontier root below agg_r is %T, want *RestrictV", fr3[0])
	}
	// Every source must be covered by some frontier subtree.
	for _, plan := range []Node{n, n2, n3} {
		covered := map[string]bool{}
		for _, root := range ShareFrontier(plan) {
			for band := range Bands(root) {
				covered[band] = true
			}
		}
		for band := range Bands(plan) {
			if !covered[band] {
				t.Errorf("band %q not covered by any frontier subtree", band)
			}
		}
	}
}
