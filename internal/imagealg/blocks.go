package imagealg

import "math"

// BlockFunc is the contiguous-block twin of PixelFunc: it applies a
// point-wise transform to every element of src, writing results into dst
// (len(dst) == len(src); dst == src aliasing is allowed and is the common
// case for multi-stage in-place application). A block twin MUST be
// bit-identical to its PixelFunc applied element-by-element — the engine
// freely substitutes one for the other, and the bit-identity property
// tests in internal/query assert the equivalence end to end.
//
// The point of the twin is dispatch cost, not different math: a PixelFunc
// costs one indirect closure call per pixel, while a BlockFunc amortizes
// one call over a whole shard and gives the compiler a tight countable
// loop (bounds-check-eliminated, registerized) over a flat []float64 slab.
type BlockFunc func(dst, src []float64)

// BlockOf lifts any PixelFunc into a BlockFunc by applying it
// element-by-element. Bit-identical by construction; used as the fallback
// when no specialized twin exists.
func BlockOf(f PixelFunc) BlockFunc {
	return func(dst, src []float64) {
		for i, v := range src {
			dst[i] = f(v)
		}
	}
}

// IdentityBlock copies src to dst (no-op when aliased).
func IdentityBlock() BlockFunc {
	return func(dst, src []float64) {
		if len(dst) == 0 || &dst[0] == &src[0] {
			return
		}
		copy(dst, src)
	}
}

// ScaleBlock is the block twin of Scale: f(v) = a·v + b.
func ScaleBlock(a, b float64) BlockFunc {
	return func(dst, src []float64) {
		for i, v := range src {
			dst[i] = a*v + b
		}
	}
}

// ClampBlock is the block twin of Clamp. NaN compares false against both
// bounds, so it passes through exactly as in the scalar form.
func ClampBlock(lo, hi float64) BlockFunc {
	return func(dst, src []float64) {
		for i, v := range src {
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			dst[i] = v
		}
	}
}

// GammaBlock is the block twin of Gamma, with the span validity check
// hoisted out of the loop.
func GammaBlock(gamma, inMin, inMax float64) BlockFunc {
	span := inMax - inMin
	inv := 1 / gamma
	return func(dst, src []float64) {
		if span <= 0 {
			if len(dst) > 0 && &dst[0] != &src[0] {
				copy(dst, src)
			}
			return
		}
		for i, v := range src {
			if math.IsNaN(v) {
				dst[i] = v
				continue
			}
			f := (v - inMin) / span
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			dst[i] = inMin + span*math.Pow(f, inv)
		}
	}
}

// ThresholdBlock is the block twin of Threshold. A NaN input compares
// false against t and must stay NaN, matching the scalar form's explicit
// pass-through.
func ThresholdBlock(t, lo, hi float64) BlockFunc {
	return func(dst, src []float64) {
		for i, v := range src {
			switch {
			case math.IsNaN(v):
				dst[i] = v
			case v >= t:
				dst[i] = hi
			default:
				dst[i] = lo
			}
		}
	}
}

// ComposeBlocks chains block transforms left to right, applying each stage
// over the whole block before the next (stage-major order). Because every
// stage is element-independent, this is bit-identical to composing the
// scalar forms point by point.
func ComposeBlocks(fs ...BlockFunc) BlockFunc {
	return func(dst, src []float64) {
		cur := src
		for _, f := range fs {
			f(dst, cur)
			cur = dst
		}
		if len(fs) == 0 && len(dst) > 0 && &dst[0] != &src[0] {
			copy(dst, src)
		}
	}
}

// FitLinearStretchBlocks is FitLinearStretch returning both the scalar
// transfer function and its block twin (used by the Stretch operator's
// frame replay).
func FitLinearStretchBlocks(m *Moments, outMin, outMax float64) (PixelFunc, BlockFunc, error) {
	fn, err := FitLinearStretch(m, outMin, outMax)
	if err != nil {
		return nil, nil, err
	}
	if m.N == 0 || m.Max <= m.Min {
		mid := (outMin + outMax) / 2
		return fn, func(dst, src []float64) {
			for i, v := range src {
				if math.IsNaN(v) {
					dst[i] = v
					continue
				}
				dst[i] = mid
			}
		}, nil
	}
	a := (outMax - outMin) / (m.Max - m.Min)
	inMin := m.Min
	return fn, func(dst, src []float64) {
		for i, v := range src {
			if math.IsNaN(v) {
				dst[i] = v
				continue
			}
			o := outMin + (v-inMin)*a
			if o < outMin {
				o = outMin
			}
			if o > outMax {
				o = outMax
			}
			dst[i] = o
		}
	}, nil
}

// FitEqualizationBlocks is FitEqualization plus a block twin. The transfer
// is bin-lookup-bound, so the twin is the generic element loop — the win
// here is only the amortized dispatch.
func FitEqualizationBlocks(h *Histogram, outMin, outMax float64) (PixelFunc, BlockFunc, error) {
	fn, err := FitEqualization(h, outMin, outMax)
	if err != nil {
		return nil, nil, err
	}
	return fn, BlockOf(fn), nil
}

// FitGaussianStretchBlocks is FitGaussianStretch plus a block twin.
func FitGaussianStretchBlocks(h *Histogram, targetMean, targetStd float64) (PixelFunc, BlockFunc, error) {
	fn, err := FitGaussianStretch(h, targetMean, targetStd)
	if err != nil {
		return nil, nil, err
	}
	return fn, BlockOf(fn), nil
}
