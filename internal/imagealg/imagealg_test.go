package imagealg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.9, math.NaN()})
	if h.N != 4 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	// Out-of-range values clamp to edge bins.
	h.Add(-5)
	h.Add(50)
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins must fail")
	}
	if _, err := NewHistogram(5, 5, 4); err == nil {
		t.Fatal("empty range must fail")
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h, _ := NewHistogram(0, 1, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Add(rng.Float64() * rng.Float64()) // skewed
	}
	cdf := h.CDF()
	prev := 0.0
	for i, c := range cdf {
		if c < prev {
			t.Fatalf("CDF not monotone at bin %d", i)
		}
		prev = c
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
		t.Fatalf("CDF must end at 1, got %g", cdf[len(cdf)-1])
	}
	// Empty histogram CDF is all zeros.
	e, _ := NewHistogram(0, 1, 4)
	for _, c := range e.CDF() {
		if c != 0 {
			t.Fatal("empty CDF must be zero")
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %g", q)
	}
	if q := h.Quantile(0); math.Abs(q-0.5) > 1.5 {
		t.Fatalf("q0 = %g", q)
	}
	if q := h.Quantile(1); math.Abs(q-99.5) > 1.5 {
		t.Fatalf("q1 = %g", q)
	}
}

func TestMoments(t *testing.T) {
	m := NewMoments()
	m.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9, math.NaN()})
	if m.N != 8 {
		t.Fatalf("N = %d", m.N)
	}
	if m.Mean() != 5 {
		t.Fatalf("mean = %g", m.Mean())
	}
	if math.Abs(m.Std()-2) > 1e-12 {
		t.Fatalf("std = %g", m.Std())
	}
	if m.Min != 2 || m.Max != 9 {
		t.Fatalf("min/max = %g/%g", m.Min, m.Max)
	}
	e := NewMoments()
	if e.Mean() != 0 || e.Std() != 0 {
		t.Fatal("empty moments must be zero")
	}
}

func TestPixelFuncs(t *testing.T) {
	if Identity()(3.5) != 3.5 {
		t.Fatal("identity wrong")
	}
	if Scale(2, 1)(3) != 7 {
		t.Fatal("scale wrong")
	}
	c := Clamp(0, 10)
	if c(-5) != 0 || c(15) != 10 || c(5) != 5 || !math.IsNaN(c(math.NaN())) {
		t.Fatal("clamp wrong")
	}
	th := Threshold(5, 0, 1)
	if th(4.9) != 0 || th(5) != 1 {
		t.Fatal("threshold wrong")
	}
	g := Gamma(2, 0, 1)
	if math.Abs(g(0.25)-0.5) > 1e-12 {
		t.Fatalf("gamma(0.25) = %g", g(0.25))
	}
	comp := Compose(Scale(2, 0), Clamp(0, 5))
	if comp(4) != 5 || comp(1) != 2 {
		t.Fatal("compose wrong")
	}
}

func TestFitLinearStretch(t *testing.T) {
	m := NewMoments()
	m.AddAll([]float64{10, 20, 30})
	f, err := FitLinearStretch(m, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if f(10) != 0 || f(30) != 255 || math.Abs(f(20)-127.5) > 1e-9 {
		t.Fatalf("stretch endpoints wrong: %g %g %g", f(10), f(20), f(30))
	}
	// Values outside the fitted range clamp.
	if f(5) != 0 || f(35) != 255 {
		t.Fatal("stretch must clamp")
	}
	if !math.IsNaN(f(math.NaN())) {
		t.Fatal("NaN must pass through")
	}
	// Degenerate (constant) frame maps to midpoint.
	d := NewMoments()
	d.Add(7)
	fd, err := FitLinearStretch(d, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if fd(7) != 127.5 {
		t.Fatalf("degenerate stretch = %g", fd(7))
	}
	if _, err := FitLinearStretch(m, 10, 10); err == nil {
		t.Fatal("empty output range must fail")
	}
}

func TestFitEqualizationFlattens(t *testing.T) {
	// Heavily skewed input; after equalization the output distribution
	// must be near-uniform on [0, 255].
	h, _ := NewHistogram(0, 1, 256)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = math.Pow(rng.Float64(), 3) // skewed toward 0
		h.Add(vals[i])
	}
	f, err := FitEqualization(h, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]float64, len(vals))
	for i, v := range vals {
		outs[i] = f(v)
	}
	sort.Float64s(outs)
	// Quartiles of a uniform [0,255] sample are ≈ 64, 127, 191.
	q := func(p float64) float64 { return outs[int(p*float64(len(outs)-1))] }
	for _, c := range []struct{ p, want float64 }{{0.25, 255.0 / 4}, {0.5, 255.0 / 2}, {0.75, 3 * 255.0 / 4}} {
		if math.Abs(q(c.p)-c.want) > 8 {
			t.Fatalf("equalized q%.2f = %g, want ≈ %g", c.p, q(c.p), c.want)
		}
	}
	// Monotone non-decreasing transfer function.
	prev := math.Inf(-1)
	for v := 0.0; v <= 1.0; v += 0.001 {
		o := f(v)
		if o < prev-1e-9 {
			t.Fatalf("equalization not monotone at %g", v)
		}
		prev = o
	}
}

func TestFitGaussianStretch(t *testing.T) {
	h, _ := NewHistogram(0, 1, 256)
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Float64() // uniform input
		h.Add(vals[i])
	}
	f, err := FitGaussianStretch(h, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMoments()
	for _, v := range vals {
		m.Add(f(v))
	}
	if math.Abs(m.Mean()-100) > 2 {
		t.Fatalf("gaussian-stretched mean = %g, want ≈ 100", m.Mean())
	}
	if math.Abs(m.Std()-20) > 3 {
		t.Fatalf("gaussian-stretched std = %g, want ≈ 20", m.Std())
	}
	if _, err := FitGaussianStretch(h, 0, 0); err == nil {
		t.Fatal("zero std must fail")
	}
}

func TestProbit(t *testing.T) {
	// Known values of the standard normal inverse CDF.
	cases := []struct{ p, z float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.8413447, 1.0},
	}
	for _, c := range cases {
		if got := probit(c.p); math.Abs(got-c.z) > 1e-4 {
			t.Errorf("probit(%g) = %g, want %g", c.p, got, c.z)
		}
	}
	if !math.IsInf(probit(0), -1) || !math.IsInf(probit(1), 1) {
		t.Fatal("probit edges must be infinite")
	}
}

// Property: probit is the inverse of the normal CDF (via erf).
func TestProbitRoundTrip(t *testing.T) {
	normCDF := func(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01 // p in [0.01, 0.99]
		z := probit(p)
		return math.Abs(normCDF(z)-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(2, 3, make([]float64, 6)); err == nil {
		t.Fatal("even kernel width must fail")
	}
	if _, err := NewKernel(3, 3, make([]float64, 8)); err == nil {
		t.Fatal("weight count mismatch must fail")
	}
	if _, err := GaussianKernel(3, 0); err == nil {
		t.Fatal("zero sigma must fail")
	}
}

func TestBoxConvolutionMeanPreserving(t *testing.T) {
	k, err := Box(3)
	if err != nil {
		t.Fatal(err)
	}
	// A constant grid convolved with a normalized kernel stays constant.
	vals := make([]float64, 25)
	for i := range vals {
		vals[i] = 7
	}
	out, err := Convolve(vals, 5, 5, k, EdgeClamp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("out[%d] = %g", i, v)
		}
	}
}

func TestConvolveEdgePolicies(t *testing.T) {
	k, _ := Box(3)
	vals := []float64{9, 9, 9, 9} // 2x2 grid
	clamp, err := Convolve(vals, 2, 2, k, EdgeClamp)
	if err != nil {
		t.Fatal(err)
	}
	if clamp[0] != 9 {
		t.Fatalf("clamp edge = %g", clamp[0])
	}
	zero, err := Convolve(vals, 2, 2, k, EdgeZero)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero[0]-4) > 1e-12 { // 4 of 9 cells are inside
		t.Fatalf("zero edge = %g", zero[0])
	}
	nan, err := Convolve(vals, 2, 2, k, EdgeNaN)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(nan[0]) {
		t.Fatal("NaN edge must produce NaN")
	}
}

func TestSobelGradient(t *testing.T) {
	// Vertical step edge: gradient magnitude peaks at the edge columns.
	w, h := 6, 5
	vals := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= 3 {
				vals[y*w+x] = 10
			}
		}
	}
	g, err := GradientMagnitude(vals, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if g[2*w+2] <= g[2*w+0] || g[2*w+3] <= g[2*w+5] {
		t.Fatalf("gradient must peak at the step: %v", g[2*w:3*w])
	}
	// Flat interior has zero gradient.
	if g[2*w+0] != 0 {
		t.Fatalf("flat gradient = %g", g[2*w+0])
	}
}

func TestConvolveNaNPropagation(t *testing.T) {
	k, _ := Box(3)
	vals := make([]float64, 25)
	vals[12] = math.NaN() // center pixel
	out, err := Convolve(vals, 5, 5, k, EdgeClamp)
	if err != nil {
		t.Fatal(err)
	}
	// Every output whose 3x3 footprint touches (2,2) is NaN.
	for y := 1; y <= 3; y++ {
		for x := 1; x <= 3; x++ {
			if !math.IsNaN(out[y*5+x]) {
				t.Fatalf("out(%d,%d) must be NaN", x, y)
			}
		}
	}
	if math.IsNaN(out[0]) {
		t.Fatal("far corner must not be NaN")
	}
}

func TestConvolveShapeMismatch(t *testing.T) {
	k, _ := Box(3)
	if _, err := Convolve(make([]float64, 10), 5, 5, k, EdgeClamp); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}
