// Package imagealg provides the pixel- and frame-level image functions the
// GeoStreams value transforms apply (§3.2): point-wise maps, the
// frame-buffered scaling transforms the paper names (linear contrast
// stretch, histogram equalization, Gaussian stretch), and convolution
// kernels for neighborhood operations.
package imagealg

import (
	"fmt"
	"math"
)

// Histogram is a fixed-range, fixed-bin-count histogram over scalar pixel
// values. NaN values are ignored; out-of-range values clamp into the edge
// bins, which matches the behaviour of typical remote-sensing stretch
// pipelines.
type Histogram struct {
	Min, Max float64
	Counts   []int64
	N        int64
}

// NewHistogram creates a histogram over [min, max] with the given number
// of bins.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("imagealg: histogram needs positive bin count, got %d", bins)
	}
	if !(min < max) {
		return nil, fmt.Errorf("imagealg: histogram range [%g, %g] invalid", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}, nil
}

// binOf maps a value to its bin index, clamping to the edges.
func (h *Histogram) binOf(v float64) int {
	f := (v - h.Min) / (h.Max - h.Min)
	b := int(f * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Add records a value; NaN is ignored.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.Counts[h.binOf(v)]++
	h.N++
}

// AddAll records every value of a slice.
func (h *Histogram) AddAll(vals []float64) {
	for _, v := range vals {
		h.Add(v)
	}
}

// Merge folds another histogram's counts into h. Both must have the same
// range and bin count (the engine's parallel fitting always merges shard
// partials built from one NewHistogram configuration); mismatched shapes
// return an error.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(o.Counts) != len(h.Counts) || o.Min != h.Min || o.Max != h.Max {
		return fmt.Errorf("imagealg: merging histogram [%g, %g]/%d into [%g, %g]/%d",
			o.Min, o.Max, len(o.Counts), h.Min, h.Max, len(h.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.N += o.N
	return nil
}

// CDF returns the empirical cumulative distribution evaluated at the upper
// edge of each bin, as fractions in [0, 1]. An empty histogram returns all
// zeros.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	var run int64
	for i, c := range h.Counts {
		run += c
		out[i] = float64(run) / float64(h.N)
	}
	return out
}

// Quantile returns the approximate q-quantile (q in [0,1]) using bin
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return h.Min
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.N)))
	if target < 1 {
		target = 1
	}
	var run int64
	for i, c := range h.Counts {
		run += c
		if run >= target {
			w := (h.Max - h.Min) / float64(len(h.Counts))
			return h.Min + (float64(i)+0.5)*w
		}
	}
	return h.Max
}

// Moments returns the count, mean, and standard deviation of all values
// recorded (exactly, via the running sums, not the binning).
type Moments struct {
	N        int64
	Sum      float64
	SumSq    float64
	Min, Max float64
}

// NewMoments returns an empty accumulator.
func NewMoments() *Moments {
	return &Moments{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add records a value; NaN is ignored.
func (m *Moments) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	m.N++
	m.Sum += v
	m.SumSq += v * v
	if v < m.Min {
		m.Min = v
	}
	if v > m.Max {
		m.Max = v
	}
}

// AddAll records every value of a slice.
func (m *Moments) AddAll(vals []float64) {
	for _, v := range vals {
		m.Add(v)
	}
}

// Merge folds another accumulator into m. Merging shard partials in a
// fixed order keeps parallel reductions deterministic: the float sums
// combine in slice order, independent of which worker computed each shard.
func (m *Moments) Merge(o *Moments) {
	if o == nil || o.N == 0 {
		return
	}
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
}

// Mean returns the mean of recorded values (0 when empty).
func (m *Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Std returns the population standard deviation (0 when empty).
func (m *Moments) Std() float64 {
	if m.N == 0 {
		return 0
	}
	mean := m.Mean()
	v := m.SumSq/float64(m.N) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
