package imagealg

import (
	"fmt"
	"math"
)

// Kernel is a convolution kernel for the neighborhood operations the query
// model admits (§1: "perform different types of neighborhood operations
// and spatial transforms on image data"). Kernels are W×H with odd
// dimensions and an implicit center anchor.
type Kernel struct {
	W, H    int
	Weights []float64
}

// NewKernel validates and constructs a kernel.
func NewKernel(w, h int, weights []float64) (Kernel, error) {
	if w <= 0 || h <= 0 || w%2 == 0 || h%2 == 0 {
		return Kernel{}, fmt.Errorf("imagealg: kernel dimensions must be odd and positive, got %dx%d", w, h)
	}
	if len(weights) != w*h {
		return Kernel{}, fmt.Errorf("imagealg: kernel %dx%d needs %d weights, got %d", w, h, w*h, len(weights))
	}
	return Kernel{W: w, H: h, Weights: weights}, nil
}

// Box returns the n×n mean filter.
func Box(n int) (Kernel, error) {
	w := make([]float64, n*n)
	for i := range w {
		w[i] = 1 / float64(n*n)
	}
	return NewKernel(n, n, w)
}

// GaussianKernel returns an n×n Gaussian smoothing kernel with the given
// sigma, normalized to sum 1.
func GaussianKernel(n int, sigma float64) (Kernel, error) {
	if sigma <= 0 {
		return Kernel{}, fmt.Errorf("imagealg: gaussian sigma must be positive, got %g", sigma)
	}
	w := make([]float64, n*n)
	c := n / 2
	var sum float64
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			d2 := float64((x-c)*(x-c) + (y-c)*(y-c))
			v := math.Exp(-d2 / (2 * sigma * sigma))
			w[y*n+x] = v
			sum += v
		}
	}
	for i := range w {
		w[i] /= sum
	}
	return NewKernel(n, n, w)
}

// SobelX and SobelY are the standard 3×3 gradient kernels.
func SobelX() Kernel {
	k, _ := NewKernel(3, 3, []float64{-1, 0, 1, -2, 0, 2, -1, 0, 1})
	return k
}

func SobelY() Kernel {
	k, _ := NewKernel(3, 3, []float64{-1, -2, -1, 0, 0, 0, 1, 2, 1})
	return k
}

// EdgePolicy controls how convolution treats pixels outside the grid.
type EdgePolicy int

const (
	// EdgeClamp replicates the nearest edge pixel.
	EdgeClamp EdgePolicy = iota
	// EdgeZero treats outside pixels as 0.
	EdgeZero
	// EdgeNaN treats outside pixels as missing, producing NaN wherever
	// the kernel footprint leaves the grid.
	EdgeNaN
)

// Convolve applies the kernel to a w×h row-major grid and returns a new
// grid of the same shape. NaN input pixels propagate to every output pixel
// whose footprint covers them.
func Convolve(vals []float64, w, h int, k Kernel, edge EdgePolicy) ([]float64, error) {
	if len(vals) != w*h {
		return nil, fmt.Errorf("imagealg: grid %dx%d needs %d values, got %d", w, h, w*h, len(vals))
	}
	out := make([]float64, len(vals))
	cx, cy := k.W/2, k.H/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			bad := false
			for ky := 0; ky < k.H && !bad; ky++ {
				for kx := 0; kx < k.W; kx++ {
					sx, sy := x+kx-cx, y+ky-cy
					var v float64
					switch {
					case sx >= 0 && sx < w && sy >= 0 && sy < h:
						v = vals[sy*w+sx]
					case edge == EdgeClamp:
						if sx < 0 {
							sx = 0
						}
						if sx >= w {
							sx = w - 1
						}
						if sy < 0 {
							sy = 0
						}
						if sy >= h {
							sy = h - 1
						}
						v = vals[sy*w+sx]
					case edge == EdgeZero:
						v = 0
					default: // EdgeNaN
						v = math.NaN()
					}
					acc += v * k.Weights[ky*k.W+kx]
					if math.IsNaN(acc) {
						bad = true
						break
					}
				}
			}
			if bad {
				out[y*w+x] = math.NaN()
			} else {
				out[y*w+x] = acc
			}
		}
	}
	return out, nil
}

// GradientMagnitude computes the Sobel gradient magnitude of a grid.
func GradientMagnitude(vals []float64, w, h int) ([]float64, error) {
	gx, err := Convolve(vals, w, h, SobelX(), EdgeClamp)
	if err != nil {
		return nil, err
	}
	gy, err := Convolve(vals, w, h, SobelY(), EdgeClamp)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = math.Hypot(gx[i], gy[i])
	}
	return out, nil
}
