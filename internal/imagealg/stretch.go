package imagealg

import (
	"fmt"
	"math"
)

// PixelFunc is a point-wise value transform f_val : V → W (Definition 8).
type PixelFunc func(float64) float64

// Identity returns its input unchanged.
func Identity() PixelFunc { return func(v float64) float64 { return v } }

// Scale returns f(v) = a·v + b.
func Scale(a, b float64) PixelFunc {
	return func(v float64) float64 { return a*v + b }
}

// Clamp limits values to [lo, hi]; NaN passes through.
func Clamp(lo, hi float64) PixelFunc {
	return func(v float64) float64 {
		if math.IsNaN(v) {
			return v
		}
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
}

// Gamma applies gamma correction on a normalized domain: values are mapped
// from [inMin, inMax] to [0,1], raised to 1/gamma, and mapped back.
func Gamma(gamma, inMin, inMax float64) PixelFunc {
	span := inMax - inMin
	return func(v float64) float64 {
		if math.IsNaN(v) || span <= 0 {
			return v
		}
		f := (v - inMin) / span
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return inMin + span*math.Pow(f, 1/gamma)
	}
}

// Threshold maps values to hi when ≥ t, else lo.
func Threshold(t, lo, hi float64) PixelFunc {
	return func(v float64) float64 {
		if math.IsNaN(v) {
			return v
		}
		if v >= t {
			return hi
		}
		return lo
	}
}

// Compose chains pixel functions left to right: Compose(f, g)(v) = g(f(v)).
func Compose(fs ...PixelFunc) PixelFunc {
	return func(v float64) float64 {
		for _, f := range fs {
			v = f(v)
		}
		return v
	}
}

// --- Frame-scoped stretches (§3.2) -----------------------------------------
//
// These are the value transforms the paper points out are NOT point-wise:
// "in order to fully utilize the complete range of values in V, point
// values can be scaled. Typical approaches include linear contrast
// stretch, histogram equalization, and Gaussian stretch. [...] information
// about previous point values needs to be maintained [...] this is
// typically done on individual frames of the stream G". The stream
// operator buffers a frame, fits one of these from the frame's values, and
// replays the frame through the fitted PixelFunc.

// FitLinearStretch builds the linear contrast stretch mapping the observed
// [min, max] of the frame onto [outMin, outMax].
func FitLinearStretch(m *Moments, outMin, outMax float64) (PixelFunc, error) {
	if outMax <= outMin {
		return nil, fmt.Errorf("imagealg: stretch output range [%g, %g] invalid", outMin, outMax)
	}
	if m.N == 0 || m.Max <= m.Min {
		// Degenerate frame: constant output midpoint.
		mid := (outMin + outMax) / 2
		return func(v float64) float64 {
			if math.IsNaN(v) {
				return v
			}
			return mid
		}, nil
	}
	a := (outMax - outMin) / (m.Max - m.Min)
	inMin := m.Min
	return func(v float64) float64 {
		if math.IsNaN(v) {
			return v
		}
		o := outMin + (v-inMin)*a
		if o < outMin {
			o = outMin
		}
		if o > outMax {
			o = outMax
		}
		return o
	}, nil
}

// FitEqualization builds the histogram-equalization transfer function: the
// output is the empirical CDF of the frame scaled onto [outMin, outMax],
// which flattens the value distribution.
func FitEqualization(h *Histogram, outMin, outMax float64) (PixelFunc, error) {
	if outMax <= outMin {
		return nil, fmt.Errorf("imagealg: equalization output range [%g, %g] invalid", outMin, outMax)
	}
	cdf := h.CDF()
	span := outMax - outMin
	hist := h
	return func(v float64) float64 {
		if math.IsNaN(v) {
			return v
		}
		if hist.N == 0 {
			return outMin
		}
		return outMin + span*cdf[hist.binOf(v)]
	}, nil
}

// FitGaussianStretch builds the Gaussian (histogram-matching) stretch: a
// value's empirical CDF position is pushed through the inverse normal CDF,
// producing an output whose distribution is approximately Gaussian with
// the given target mean and standard deviation, clamped at ±3σ.
func FitGaussianStretch(h *Histogram, targetMean, targetStd float64) (PixelFunc, error) {
	if targetStd <= 0 {
		return nil, fmt.Errorf("imagealg: gaussian stretch needs positive std, got %g", targetStd)
	}
	cdf := h.CDF()
	hist := h
	return func(v float64) float64 {
		if math.IsNaN(v) {
			return v
		}
		if hist.N == 0 {
			return targetMean
		}
		p := cdf[hist.binOf(v)]
		// Keep strictly inside (0, 1) so the probit is finite.
		const eps = 1e-6
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		z := probit(p)
		if z < -3 {
			z = -3
		}
		if z > 3 {
			z = 3
		}
		return targetMean + targetStd*z
	}, nil
}

// probit is the inverse standard normal CDF, via the Acklam rational
// approximation (relative error < 1.15e-9 over (0, 1)).
func probit(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}
