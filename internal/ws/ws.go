// Package ws is a minimal RFC 6455 WebSocket implementation over the
// standard library, sized for the DSMS delivery hub: HTTP upgrade
// (server) and dial (client), unfragmented and fragmented data messages,
// ping/pong/close control frames, client-side masking, and strict
// server-side mask enforcement. It deliberately omits extensions
// (permessage-deflate), subprotocol negotiation, and TLS dialing.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"crypto/tls"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// acceptGUID is the fixed key-digest suffix of RFC 6455 §1.3.
const acceptGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Opcode identifies a WebSocket frame type.
type Opcode byte

// Frame opcodes (RFC 6455 §5.2).
const (
	opCont   Opcode = 0x0
	OpText   Opcode = 0x1
	OpBinary Opcode = 0x2
	OpClose  Opcode = 0x8
	OpPing   Opcode = 0x9
	OpPong   Opcode = 0xA
)

// DefaultMaxPayload bounds one assembled message; a peer exceeding it is
// a protocol error, not an allocation.
const DefaultMaxPayload = 8 << 20

// ErrTooLarge reports a message over the connection's payload bound.
var ErrTooLarge = errors.New("ws: message exceeds payload limit")

// Closed reports a clean close handshake initiated by the peer; Code and
// Reason carry the close frame's status.
type Closed struct {
	Code   uint16
	Reason string
}

func (c *Closed) Error() string {
	return fmt.Sprintf("ws: closed by peer (code %d, %q)", c.Code, c.Reason)
}

// Conn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized so control frames (pong,
// ping, close) may be written concurrently with data frames.
type Conn struct {
	conn       net.Conn
	br         *bufio.Reader
	client     bool // mask outgoing frames
	maxPayload int

	wmu sync.Mutex

	// continuation-assembly state for fragmented messages
	asmOp  Opcode
	asmBuf []byte
	asming bool
}

// Accept computes the Sec-WebSocket-Accept digest for a client key.
func Accept(key string) string {
	h := sha1.Sum([]byte(key + acceptGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// tokenIn reports whether a comma-separated header contains a token
// (case-insensitive) — "Connection: keep-alive, Upgrade" must match.
func tokenIn(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// IsUpgrade reports whether the request asks for a WebSocket upgrade.
func IsUpgrade(r *http.Request) bool {
	return tokenIn(r.Header.Get("Connection"), "upgrade") &&
		strings.EqualFold(r.Header.Get("Upgrade"), "websocket")
}

// Upgrade hijacks the HTTP request into a server-side WebSocket
// connection, answering the 101 handshake. On a malformed handshake it
// writes the error response itself and returns the reason.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket upgrade requires GET", http.StatusMethodNotAllowed)
		return nil, errors.New("ws: upgrade method not GET")
	}
	if !IsUpgrade(r) {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, errors.New("ws: missing upgrade headers")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusBadRequest)
		return nil, fmt.Errorf("ws: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket unsupported", http.StatusInternalServerError)
		return nil, errors.New("ws: response writer cannot hijack")
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + Accept(key) + "\r\n\r\n"
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}
	conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	return &Conn{conn: conn, br: brw.Reader, maxPayload: DefaultMaxPayload}, nil
}

// Dial connects a client WebSocket to a ws:// or http:// URL. Extra
// headers (e.g. Authorization) ride on the handshake request.
func Dial(rawURL string, hdr http.Header, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: bad url: %w", err)
	}
	host := u.Host
	useTLS := false
	switch u.Scheme {
	case "ws", "http":
		if u.Port() == "" {
			host += ":80"
		}
	case "wss", "https":
		useTLS = true
		if u.Port() == "" {
			host += ":443"
		}
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q", u.Scheme)
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	if useTLS {
		conn = tls.Client(conn, &tls.Config{ServerName: u.Hostname()})
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: %s\r\n", path, u.Host)
	b.WriteString("Upgrade: websocket\r\nConnection: Upgrade\r\n")
	fmt.Fprintf(&b, "Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n", key)
	for k, vs := range hdr {
		for _, v := range vs {
			fmt.Fprintf(&b, "%s: %s\r\n", k, v)
		}
	}
	b.WriteString("\r\n")
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
	if _, err := io.WriteString(conn, b.String()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake write: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake read: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake refused: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != Accept(key) {
		conn.Close()
		return nil, fmt.Errorf("ws: bad accept digest %q", got)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	return &Conn{conn: conn, br: br, client: true, maxPayload: DefaultMaxPayload}, nil
}

// SetMaxPayload bounds one assembled message (DefaultMaxPayload if unset).
func (c *Conn) SetMaxPayload(n int) { c.maxPayload = n }

// SetReadDeadline bounds subsequent reads.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Close tears the TCP connection down without a close handshake.
func (c *Conn) Close() error { return c.conn.Close() }

// WriteMessage writes one unfragmented frame, serialized against other
// writers; deadline bounds the write (zero = no deadline).
func (c *Conn) WriteMessage(op Opcode, p []byte, deadline time.Time) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(deadline) //nolint:errcheck
	var hdr [14]byte
	hdr[0] = 0x80 | byte(op)
	n := 2
	l := len(p)
	switch {
	case l < 126:
		hdr[1] = byte(l)
	case l < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(l))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var key [4]byte
		if _, err := rand.Read(key[:]); err != nil {
			return err
		}
		copy(hdr[n:], key[:])
		n += 4
		masked := make([]byte, l)
		for i := range p {
			masked[i] = p[i] ^ key[i&3]
		}
		p = masked
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	if l == 0 {
		return nil
	}
	_, err := c.conn.Write(p)
	return err
}

// WriteBinary writes one binary message.
func (c *Conn) WriteBinary(p []byte, deadline time.Time) error {
	return c.WriteMessage(OpBinary, p, deadline)
}

// WriteBinaryParts writes one binary message whose payload is the
// concatenation of parts without copying them into a single buffer —
// the render-once fan-out path shares one frame backing across every
// subscriber. Server-side only: client frames must be masked, which
// requires transforming the payload.
func (c *Conn) WriteBinaryParts(deadline time.Time, parts ...[]byte) error {
	if c.client {
		return errors.New("ws: WriteBinaryParts requires the unmasked server side")
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(deadline) //nolint:errcheck
	var hdr [10]byte
	hdr[0] = 0x80 | byte(OpBinary)
	n := 2
	switch {
	case total < 126:
		hdr[1] = byte(total)
	case total < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(total))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(total))
		n = 10
	}
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if _, err := c.conn.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// WritePing writes a ping control frame.
func (c *Conn) WritePing(p []byte, deadline time.Time) error {
	return c.WriteMessage(OpPing, p, deadline)
}

// WritePong answers a ping.
func (c *Conn) WritePong(p []byte, deadline time.Time) error {
	return c.WriteMessage(OpPong, p, deadline)
}

// WriteClose writes a close frame with a status code and reason.
func (c *Conn) WriteClose(code uint16, reason string, deadline time.Time) error {
	p := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(p, code)
	copy(p[2:], reason)
	return c.WriteMessage(OpClose, p, deadline)
}

// readFrame reads one raw frame, unmasking and enforcing the mask rule
// for the connection's side.
func (c *Conn) readFrame() (op Opcode, fin bool, p []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return 0, false, nil, err
	}
	if h[0]&0x70 != 0 {
		return 0, false, nil, errors.New("ws: nonzero RSV bits (no extension negotiated)")
	}
	fin = h[0]&0x80 != 0
	op = Opcode(h[0] & 0x0f)
	masked := h[1]&0x80 != 0
	if c.client && masked {
		return 0, false, nil, errors.New("ws: server sent masked frame")
	}
	if !c.client && !masked {
		// RFC 6455 §5.1: a server MUST close on an unmasked client frame.
		return 0, false, nil, errors.New("ws: client sent unmasked frame")
	}
	length := int64(h[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = int64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > uint64(c.maxPayload) {
			return 0, false, nil, ErrTooLarge
		}
		length = int64(v)
	}
	if length > int64(c.maxPayload) {
		return 0, false, nil, ErrTooLarge
	}
	if op >= OpClose && (!fin || length > 125) {
		return 0, false, nil, errors.New("ws: malformed control frame")
	}
	var key [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, key[:]); err != nil {
			return 0, false, nil, err
		}
	}
	p = make([]byte, length)
	if _, err = io.ReadFull(c.br, p); err != nil {
		return 0, false, nil, err
	}
	if masked {
		for i := range p {
			p[i] ^= key[i&3]
		}
	}
	return op, fin, p, nil
}

// ReadMessage returns the next complete message: a data message
// (OpText/OpBinary, continuation frames assembled) or a control frame
// (OpPing/OpPong), which may interleave mid-fragment. A peer-initiated
// close surfaces as *Closed.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	for {
		op, fin, p, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case opCont:
			if !c.asming {
				return 0, nil, errors.New("ws: continuation without start frame")
			}
			if len(c.asmBuf)+len(p) > c.maxPayload {
				return 0, nil, ErrTooLarge
			}
			c.asmBuf = append(c.asmBuf, p...)
			if fin {
				c.asming = false
				buf := c.asmBuf
				c.asmBuf = nil
				return c.asmOp, buf, nil
			}
		case OpText, OpBinary:
			if c.asming {
				return 0, nil, errors.New("ws: new data frame mid-fragment")
			}
			if fin {
				return op, p, nil
			}
			c.asming, c.asmOp = true, op
			c.asmBuf = append([]byte(nil), p...)
		case OpClose:
			cl := &Closed{Code: 1005}
			if len(p) >= 2 {
				cl.Code = binary.BigEndian.Uint16(p)
				cl.Reason = string(p[2:])
			}
			return OpClose, p, cl
		case OpPing, OpPong:
			return op, p, nil
		default:
			return 0, nil, fmt.Errorf("ws: reserved opcode %#x", byte(op))
		}
	}
}
