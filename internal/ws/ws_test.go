package ws

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAcceptDigest pins the RFC 6455 §1.3 known answer.
func TestAcceptDigest(t *testing.T) {
	got := Accept("dGhlIHNhbXBsZSBub25jZQ==")
	if got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("accept digest = %q", got)
	}
}

// echoServer upgrades and echoes data messages, answering pings, until
// the peer closes.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			op, p, err := c.ReadMessage()
			if err != nil {
				var cl *Closed
				if errors.As(err, &cl) {
					c.WriteClose(cl.Code, "", time.Now().Add(time.Second)) //nolint:errcheck
				}
				return
			}
			switch op {
			case OpPing:
				if err := c.WritePong(p, time.Now().Add(time.Second)); err != nil {
					return
				}
			case OpText, OpBinary:
				if err := c.WriteMessage(op, p, time.Now().Add(time.Second)); err != nil {
					return
				}
			}
		}
	}))
}

func wsURL(ts *httptest.Server) string {
	return "ws" + strings.TrimPrefix(ts.URL, "http")
}

func TestEchoRoundTrip(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	c, err := Dial(wsURL(ts), nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sizes := []int{0, 1, 125, 126, 4096, 70000} // cross both length encodings
	for _, n := range sizes {
		msg := bytes.Repeat([]byte{0xAB}, n)
		if err := c.WriteBinary(msg, time.Now().Add(time.Second)); err != nil {
			t.Fatalf("write %d: %v", n, err)
		}
		op, got, err := c.ReadMessage()
		if err != nil || op != OpBinary || !bytes.Equal(got, msg) {
			t.Fatalf("echo %d bytes: op=%v len=%d err=%v", n, op, len(got), err)
		}
	}

	// Ping → pong with matching payload.
	if err := c.WritePing([]byte("hb-1"), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	op, p, err := c.ReadMessage()
	if err != nil || op != OpPong || string(p) != "hb-1" {
		t.Fatalf("pong = %v %q %v", op, p, err)
	}

	// Clean close handshake.
	if err := c.WriteClose(1000, "done", time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ReadMessage()
	var cl *Closed
	if !errors.As(err, &cl) || cl.Code != 1000 {
		t.Fatalf("close answer = %v", err)
	}
}

// TestServerRejectsUnmaskedClientFrames pins RFC 6455 §5.1: raw unmasked
// bytes from a "client" must error the server read, not deliver data.
func TestServerRejectsUnmaskedClientFrames(t *testing.T) {
	errc := make(chan error, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			errc <- err
			return
		}
		defer c.Close()
		_, _, err = c.ReadMessage()
		errc <- err
	}))
	defer ts.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: AQIDBAUGBwgJCgsMDQ4PEA==\r\n"+
		"Sec-WebSocket-Version: 13\r\n\r\n")
	br := bufio.NewReader(conn)
	if _, err := http.ReadResponse(br, nil); err != nil {
		t.Fatal(err)
	}
	// FIN+binary, unmasked, 2-byte payload — a masked-required violation.
	if _, err := conn.Write([]byte{0x82, 0x02, 'h', 'i'}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "unmasked") {
			t.Fatalf("server read = %v, want unmasked-frame error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never rejected the unmasked frame")
	}
}

// TestMaxPayloadEnforced pins the allocation guard: an advertised length
// beyond the bound errors before any payload is read.
func TestMaxPayloadEnforced(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	c, err := Dial(wsURL(ts), nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetMaxPayload(1024)
	if err := c.WriteBinary(bytes.Repeat([]byte{1}, 2048), time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadMessage(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize read = %v, want ErrTooLarge", err)
	}
}

// TestFragmentedMessageAssembly drives continuation frames through a raw
// server-side connection.
func TestFragmentedMessageAssembly(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: AQIDBAUGBwgJCgsMDQ4PEA==\r\n"+
		"Sec-WebSocket-Version: 13\r\n\r\n")
	br := bufio.NewReader(conn)
	if _, err := http.ReadResponse(br, nil); err != nil {
		t.Fatal(err)
	}
	// "geo" + "streams" as text + continuation, masked with a zero key so
	// the payload rides through unchanged.
	frame := func(fin bool, op byte, p string) []byte {
		b0 := op
		if fin {
			b0 |= 0x80
		}
		out := []byte{b0, 0x80 | byte(len(p)), 0, 0, 0, 0}
		return append(out, p...)
	}
	conn.Write(frame(false, 0x1, "geo"))    //nolint:errcheck
	conn.Write(frame(true, 0x0, "streams")) //nolint:errcheck

	// The echo comes back as one assembled unmasked text frame.
	hdr := make([]byte, 2)
	if _, err := bufio.NewReader(br).Read(hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != 0x81 || hdr[1] != 10 {
		t.Fatalf("echo header = %#x %d", hdr[0], hdr[1])
	}
	payload := make([]byte, 10)
	if _, err := br.Read(payload); err != nil {
		t.Fatal(err)
	}
	if string(payload) != "geostreams" {
		t.Fatalf("assembled echo = %q", payload)
	}
}

// TestDialRejectsNonUpgrade checks the client refuses a server that does
// not switch protocols.
func TestDialRejectsNonUpgrade(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer ts.Close()
	if _, err := Dial(wsURL(ts), nil, 2*time.Second); err == nil {
		t.Fatal("dial against non-upgrading server must fail")
	}
}
