package sat

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

func TestNoiseDeterministicAndBounded(t *testing.T) {
	f := func(x, y float64, tt int64) bool {
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		if math.IsNaN(x) || math.IsNaN(y) {
			x, y = 0, 0
		}
		a := Noise2(42, x, y, tt)
		b := Noise2(42, x, y, tt)
		return a == b && a >= 0 && a < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Different seeds decorrelate.
	if Noise2(1, 3.7, 4.1, 0) == Noise2(2, 3.7, 4.1, 0) {
		t.Fatal("seeds must decorrelate")
	}
}

func TestNoiseContinuity(t *testing.T) {
	// Value noise must be continuous: small moves, small changes.
	prev := Noise2(7, 0, 0.5, 0)
	for x := 0.001; x < 3; x += 0.001 {
		v := Noise2(7, x, 0.5, 0)
		if math.Abs(v-prev) > 0.02 {
			t.Fatalf("noise jump at x=%g: %g -> %g", x, prev, v)
		}
		prev = v
	}
}

func TestFBMBounded(t *testing.T) {
	for x := -5.0; x < 5; x += 0.37 {
		for y := -5.0; y < 5; y += 0.41 {
			v := FBM(9, x, y, 3, 4)
			if v < 0 || v >= 1 {
				t.Fatalf("FBM out of range: %g", v)
			}
		}
	}
}

func TestSceneBandsCorrelateWithVegetation(t *testing.T) {
	s := DefaultScene(1234)
	s.CloudCover = 0 // isolate the vegetation signal
	vis := s.BandField(BandVIS)
	nir := s.BandField(BandNIR)
	// Find a high-veg and low-veg location.
	var hiLon, hiLat, loLon, loLat float64
	hi, lo := -1.0, 2.0
	for lon := -125.0; lon < -115; lon += 0.25 {
		for lat := 32.0; lat < 42; lat += 0.25 {
			v := s.Vegetation(lon, lat)
			if v > hi {
				hi, hiLon, hiLat = v, lon, lat
			}
			if v < lo {
				lo, loLon, loLat = v, lon, lat
			}
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("vegetation field too flat: hi=%g lo=%g", hi, lo)
	}
	// NDVI at the vegetated point must exceed NDVI at the barren point.
	ndvi := func(lon, lat float64) float64 {
		n := nir.Sample(lon, lat, 0)
		v := vis.Sample(lon, lat, 0)
		return (n - v) / (n + v)
	}
	if ndvi(hiLon, hiLat) <= ndvi(loLon, loLat) {
		t.Fatalf("NDVI must rank vegetation: %g (veg) vs %g (bare)",
			ndvi(hiLon, hiLat), ndvi(loLon, loLat))
	}
}

func TestSceneCloudsBrightenVisible(t *testing.T) {
	s := DefaultScene(99)
	s.CloudCover = 0.9
	cloudy := s.BandField(BandVIS)
	s2 := DefaultScene(99)
	s2.CloudCover = 0
	clear := s2.BandField(BandVIS)
	// Averaged over an area, heavy clouds brighten the visible band.
	var sumCl, sumClr float64
	n := 0
	for lon := -120.0; lon < -118; lon += 0.1 {
		for lat := 36.0; lat < 38; lat += 0.1 {
			sumCl += cloudy.Sample(lon, lat, 0)
			sumClr += clear.Sample(lon, lat, 0)
			n++
		}
	}
	if sumCl <= sumClr {
		t.Fatalf("clouds must brighten vis: %g vs %g", sumCl/float64(n), sumClr/float64(n))
	}
}

func collectBand(t *testing.T, im *Imager, band string) []*stream.Chunk {
	t.Helper()
	g := stream.NewGroup(context.Background())
	streams, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	var got []*stream.Chunk
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, _ = stream.Collect(context.Background(), streams[band])
	}()
	// Drain the other bands so producers can finish.
	for name, s := range streams {
		if name == band {
			continue
		}
		go stream.Drain(context.Background(), s) //nolint:errcheck
	}
	<-done
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestLatLonImagerRowByRow(t *testing.T) {
	scene := DefaultScene(5)
	im, err := NewLatLonImager(geom.R(-122, 36, -120, 38), 16, 12, scene,
		[]string{BandVIS, BandNIR}, stream.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := collectBand(t, im, BandVIS)

	// 12 rows + 1 EOS per sector, 2 sectors.
	if len(got) != 26 {
		t.Fatalf("chunk count = %d, want 26", len(got))
	}
	rows, eos := 0, 0
	for _, c := range got {
		switch c.Kind {
		case stream.KindGrid:
			rows++
			if c.Grid.Lat.H != 1 || c.Grid.Lat.W != 16 {
				t.Fatalf("row chunk lattice = %v", c.Grid.Lat)
			}
		case stream.KindEndOfSector:
			eos++
			if c.Sector.Extent.NumPoints() != 16*12 {
				t.Fatalf("EOS extent = %v", c.Sector.Extent)
			}
		}
	}
	if rows != 24 || eos != 2 {
		t.Fatalf("rows=%d eos=%d", rows, eos)
	}
	// Values in nominal range.
	for _, c := range got {
		c.ForEachPoint(func(_ geom.Point, v float64) {
			if !math.IsNaN(v) && (v < 0 || v > 1023) {
				t.Fatalf("radiance %g out of range", v)
			}
		})
	}
}

func TestImagerImageByImage(t *testing.T) {
	scene := DefaultScene(5)
	im, err := NewLatLonImager(geom.R(-122, 36, -120, 38), 8, 8, scene,
		[]string{BandVIS}, stream.ImageByImage, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := collectBand(t, im, BandVIS)
	if len(got) != 6 { // 3 frames + 3 EOS
		t.Fatalf("chunk count = %d", len(got))
	}
	if got[0].Kind != stream.KindGrid || got[0].NumPoints() != 64 {
		t.Fatalf("first chunk = %+v", got[0])
	}
}

func TestImagerDeterminism(t *testing.T) {
	mk := func() []*stream.Chunk {
		scene := DefaultScene(77)
		im, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 8, 8, scene,
			[]string{BandVIS}, stream.RowByRow, 1)
		if err != nil {
			t.Fatal(err)
		}
		return collectBand(t, im, BandVIS)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			t.Fatal("nondeterministic chunk kinds")
		}
		if a[i].Kind == stream.KindGrid {
			for j := range a[i].Grid.Vals {
				if a[i].Grid.Vals[j] != b[i].Grid.Vals[j] {
					t.Fatal("nondeterministic values")
				}
			}
		}
	}
}

func TestImagerStampPolicies(t *testing.T) {
	scene := DefaultScene(3)
	im, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 4, 4, scene,
		[]string{BandVIS, BandNIR}, stream.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sector-id stamping: both bands share sector timestamps 0, 1.
	if im.stampFor(1, 0) != im.stampFor(1, 1) {
		t.Fatal("sector stamping must agree across bands")
	}
	im.Stamp = stream.StampMeasurementTime
	if im.stampFor(1, 0) == im.stampFor(1, 1) {
		t.Fatal("measurement-time stamping must differ across bands")
	}
	// And across sectors.
	if im.stampFor(1, 0) == im.stampFor(2, 0) {
		t.Fatal("measurement times must advance across sectors")
	}
}

func TestGOESImagerOffEarthNaN(t *testing.T) {
	scene := DefaultScene(11)
	// A sector near the limb of the disk: some scan angles miss the Earth.
	im, err := NewGOESImager(-75, geom.R(-135, 20, -60, 55), 24, 18, scene,
		[]string{BandVIS}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := collectBand(t, im, BandVIS)
	valid, nan := 0, 0
	for _, c := range got {
		c.ForEachPoint(func(_ geom.Point, v float64) {
			if math.IsNaN(v) {
				nan++
			} else {
				valid++
			}
		})
	}
	if valid == 0 {
		t.Fatal("GOES imager produced no valid data")
	}
	// CRS must be the satellite view.
	if im.Info(im.Bands[0]).CRS.Name() != "geos:-75" {
		t.Fatalf("CRS = %s", im.Info(im.Bands[0]).CRS.Name())
	}
}

func TestGOESImagerInvisibleRegionFails(t *testing.T) {
	scene := DefaultScene(1)
	if _, err := NewGOESImager(-75, geom.R(100, -10, 110, 10), 8, 8, scene,
		[]string{BandVIS}, 1); err == nil {
		t.Fatal("antipodal region must be rejected")
	}
}

func TestImagerValidation(t *testing.T) {
	im := &Imager{}
	if err := im.Validate(); err == nil {
		t.Fatal("empty imager must be invalid")
	}
}

func TestLIDARScanner(t *testing.T) {
	s := DefaultScene(21)
	l := &LIDARScanner{
		Name:   "lidar",
		Region: geom.R(-121, 37, -120, 38),
		Bands: []Band{
			{Name: "elev", Field: s.BandField(BandVIS)},
			{Name: "intensity", Field: s.BandField(BandNIR)},
		},
		PointsPerChunk: 16,
		NumChunks:      4,
		Seed:           9,
	}
	g := stream.NewGroup(context.Background())
	streams, err := l.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []*stream.Chunk
	done := make(chan struct{}, 2)
	go func() { a, _ = stream.Collect(context.Background(), streams["elev"]); done <- struct{}{} }()
	go func() { b, _ = stream.Collect(context.Background(), streams["intensity"]); done <- struct{}{} }()
	<-done
	<-done
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("chunk counts %d/%d", len(a), len(b))
	}
	var lastT geom.Timestamp = -1
	for ci := range a {
		if len(a[ci].Points) != 16 {
			t.Fatalf("points per chunk = %d", len(a[ci].Points))
		}
		for i := range a[ci].Points {
			pa, pb := a[ci].Points[i], b[ci].Points[i]
			// Bands share the exact scan pattern (location + time).
			if pa.P != pb.P {
				t.Fatalf("band scan patterns diverge: %v vs %v", pa.P, pb.P)
			}
			// Points ordered by time.
			if pa.P.T <= lastT {
				t.Fatalf("timestamps not increasing: %d after %d", pa.P.T, lastT)
			}
			lastT = pa.P.T
			if !l.Region.Contains(pa.P.S) {
				t.Fatalf("shot outside region: %v", pa.P.S)
			}
		}
	}
}

func TestLIDARValidation(t *testing.T) {
	l := &LIDARScanner{Region: geom.EmptyRect()}
	if err := l.Validate(); err == nil {
		t.Fatal("empty region must be invalid")
	}
}

func TestImagerRowsPerChunkBatching(t *testing.T) {
	scene := DefaultScene(13)
	im, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 8, 10, scene,
		[]string{BandVIS}, stream.RowByRow, 1)
	if err != nil {
		t.Fatal(err)
	}
	im.RowsPerChunk = 4
	got := collectBand(t, im, BandVIS)
	// 10 rows in batches of 4 -> chunks of 4, 4, 2 rows + EOS.
	var heights []int
	for _, c := range got {
		if c.Kind == stream.KindGrid {
			heights = append(heights, c.Grid.Lat.H)
		}
	}
	if len(heights) != 3 || heights[0] != 4 || heights[1] != 4 || heights[2] != 2 {
		t.Fatalf("batch heights = %v", heights)
	}
	// Batched chunks carry the same values as unbatched.
	im2, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 8, 10, scene,
		[]string{BandVIS}, stream.RowByRow, 1)
	if err != nil {
		t.Fatal(err)
	}
	flat := func(chunks []*stream.Chunk) []float64 {
		var out []float64
		for _, c := range chunks {
			if c.Kind == stream.KindGrid {
				out = append(out, c.Grid.Vals...)
			}
		}
		return out
	}
	a, b := flat(got), flat(collectBand(t, im2, BandVIS))
	if len(a) != len(b) {
		t.Fatalf("value counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		va, vb := a[i], b[i]
		if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
			t.Fatalf("value %d differs: %g vs %g", i, va, vb)
		}
	}
}

func TestImagerIntervalPacing(t *testing.T) {
	scene := DefaultScene(3)
	im, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 4, 4, scene,
		[]string{BandVIS}, stream.RowByRow, 3)
	if err != nil {
		t.Fatal(err)
	}
	im.Interval = 30 * time.Millisecond
	start := time.Now()
	got := collectBand(t, im, BandVIS)
	elapsed := time.Since(start)
	if len(got) != 15 { // 3 sectors x (4 rows + EOS)
		t.Fatalf("chunks = %d", len(got))
	}
	// Two inter-sector waits of 30ms must have elapsed.
	if elapsed < 55*time.Millisecond {
		t.Fatalf("pacing too fast: %s", elapsed)
	}
}

func TestImagerIntervalCancellation(t *testing.T) {
	scene := DefaultScene(3)
	im, err := NewLatLonImager(geom.R(-122, 36, -121, 37), 4, 4, scene,
		[]string{BandVIS}, stream.RowByRow, 1000)
	if err != nil {
		t.Fatal(err)
	}
	im.Interval = time.Hour // would take forever without cancellation
	ctx, cancel := context.WithCancel(context.Background())
	g := stream.NewGroup(ctx)
	streams, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first sector, then cancel.
	for i := 0; i < 5; i++ {
		<-streams[BandVIS].C
	}
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("paced imager did not stop on cancellation")
	}
}
