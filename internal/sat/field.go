// Package sat simulates the remote-sensing instruments the paper's
// prototype consumed live (GOES imagers, airborne cameras, LIDAR). This is
// the documented substitution for the real 20–60 GB/day satellite
// downlink: a deterministic procedural radiance field sampled through the
// same scan geometries, organizations (Fig. 1), and timestamping policies,
// so every operator-level behaviour the paper analyzes is exercised by the
// same code paths real data would take.
package sat

import (
	"math"
)

// hash64 is a 64-bit integer mix (splitmix64 finalizer); the noise
// functions build all randomness from it so fields are reproducible from
// a seed without math/rand state.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// latticeNoise returns a deterministic pseudo-random value in [0, 1) for
// an integer lattice corner.
func latticeNoise(seed int64, ix, iy, it int64) float64 {
	h := hash64(uint64(seed)*0x9e3779b97f4a7c15 ^
		uint64(ix)*0xd6e8feb86659fd93 ^
		uint64(iy)*0xa2f9836e4e441529 ^
		uint64(it)*0xc2b2ae3d27d4eb4f)
	return float64(h>>11) / float64(1<<53)
}

// smoothstep is the C¹ fade used for value-noise interpolation.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// Noise2 is deterministic 2-D value noise in [0, 1): bilinear blending of
// hashed lattice corners with smoothstep fade. `t` varies the field over
// scan sectors (drifting clouds, changing vegetation).
func Noise2(seed int64, x, y float64, t int64) float64 {
	ix, iy := math.Floor(x), math.Floor(y)
	fx, fy := x-ix, y-iy
	i, j := int64(ix), int64(iy)
	u, v := smoothstep(fx), smoothstep(fy)
	n00 := latticeNoise(seed, i, j, t)
	n10 := latticeNoise(seed, i+1, j, t)
	n01 := latticeNoise(seed, i, j+1, t)
	n11 := latticeNoise(seed, i+1, j+1, t)
	return (n00*(1-u)+n10*u)*(1-v) + (n01*(1-u)+n11*u)*v
}

// FBM is fractal Brownian motion: octaves of Noise2 with doubling
// frequency and halving amplitude, normalized to [0, 1).
func FBM(seed int64, x, y float64, t int64, octaves int) float64 {
	if octaves < 1 {
		octaves = 1
	}
	sum, amp, norm := 0.0, 1.0, 0.0
	fx, fy := x, y
	for o := 0; o < octaves; o++ {
		sum += amp * Noise2(seed+int64(o)*101, fx, fy, t)
		norm += amp
		amp /= 2
		fx *= 2
		fy *= 2
	}
	return sum / norm
}

// Field is a deterministic synthetic radiance field over geographic
// coordinates: Sample returns the radiance at (lon°, lat°) during scan
// sector `sector`.
type Field interface {
	Sample(lon, lat float64, sector int64) float64
}

// FieldFunc adapts a function to the Field interface.
type FieldFunc func(lon, lat float64, sector int64) float64

func (f FieldFunc) Sample(lon, lat float64, sector int64) float64 { return f(lon, lat, sector) }

// ConstField is a constant radiance field (calibration target).
type ConstField float64

func (c ConstField) Sample(float64, float64, int64) float64 { return float64(c) }

// Scene is a correlated multi-band synthetic Earth scene: a slowly varying
// vegetation-fraction field plus a drifting cloud deck, from which the
// visible and near-infrared radiances are derived with opposite
// vegetation sensitivity — so NDVI computed from the two bands recovers
// the vegetation structure, making the paper's running data product
// meaningful on synthetic data.
type Scene struct {
	Seed int64
	// VegScale is the spatial scale of vegetation features in degrees.
	VegScale float64
	// CloudScale is the spatial scale of clouds in degrees; CloudDrift is
	// their longitudinal motion per sector in degrees.
	CloudScale float64
	CloudDrift float64
	// CloudCover in [0, 1] is the fraction of sky clouded.
	CloudCover float64
	// VMax is the full-scale radiance (GOES imager counts are 10-bit, so
	// 1023 by default).
	VMax float64
}

// DefaultScene returns a plausible western-US scene.
func DefaultScene(seed int64) *Scene {
	return &Scene{
		Seed:       seed,
		VegScale:   2.0,
		CloudScale: 5.0,
		CloudDrift: 0.4,
		CloudCover: 0.3,
		VMax:       1023,
	}
}

// Vegetation returns the vegetation fraction in [0, 1] at a location
// (time-invariant at sector scale).
func (s *Scene) Vegetation(lon, lat float64) float64 {
	return FBM(s.Seed, lon/s.VegScale, lat/s.VegScale, 0, 4)
}

// cloud returns cloud optical fraction in [0, 1] at a location and sector.
func (s *Scene) cloud(lon, lat float64, sector int64) float64 {
	c := FBM(s.Seed+7777, (lon+float64(sector)*s.CloudDrift)/s.CloudScale, lat/s.CloudScale, 0, 3)
	// Threshold into [0,1] coverage with soft edges.
	edge := 1 - s.CloudCover
	if c < edge {
		return 0
	}
	return (c - edge) / (1 - edge)
}

// Band names for the scene's spectral channels.
const (
	BandVIS = "vis"
	BandNIR = "nir"
	BandIR  = "ir"
)

// BandField derives a spectral band from the scene:
//
//	vis: bright over bare soil/clouds, dark over vegetation
//	nir: bright over vegetation and clouds
//	ir:  thermal proxy, anti-correlated with clouds
func (s *Scene) BandField(band string) Field {
	return FieldFunc(func(lon, lat float64, sector int64) float64 {
		veg := s.Vegetation(lon, lat)
		cld := s.cloud(lon, lat, sector)
		tex := 0.05 * Noise2(s.Seed+31, lon*40, lat*40, sector)
		var refl float64
		switch band {
		case BandVIS:
			refl = 0.35 - 0.25*veg
		case BandNIR:
			refl = 0.25 + 0.55*veg
		case BandIR:
			refl = 0.65 - 0.20*veg
		default:
			refl = 0.5
		}
		// Clouds are bright in vis/nir, cold (dark) in ir.
		if band == BandIR {
			refl = refl*(1-cld) + 0.15*cld
		} else {
			refl = refl*(1-cld) + 0.85*cld
		}
		v := (refl + tex) * s.VMax
		if v < 0 {
			v = 0
		}
		if v > s.VMax {
			v = s.VMax
		}
		return v
	})
}
