package sat

import (
	"context"
	"fmt"
	"time"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

// LIDARScanner simulates the point-by-point organization of Fig. 1c:
// "some instruments, such as LIDAR, have non-uniform point lattice
// structures, and points are only ordered by time." It emits point-list
// chunks whose sample locations wander pseudo-randomly (deterministically
// from Seed) over a region, each point with its own strictly increasing
// timestamp.
//
// Every band stream visits exactly the same point sequence — the device
// measures multiple returns per shot — so stream composition across bands
// can pair points by identical spatio-temporal location.
type LIDARScanner struct {
	Name   string
	Region geom.Rect
	Bands  []Band
	// PointsPerChunk is the shot batch size (default 64).
	PointsPerChunk int
	// NumChunks per band stream.
	NumChunks int
	Seed      int64
	StartTime geom.Timestamp
}

// Validate checks the scanner configuration.
func (l *LIDARScanner) Validate() error {
	if l.Region.Empty() {
		return fmt.Errorf("sat: lidar region is empty")
	}
	if len(l.Bands) == 0 {
		return fmt.Errorf("sat: lidar has no bands")
	}
	if l.NumChunks < 1 {
		return fmt.Errorf("sat: lidar must emit at least one chunk")
	}
	return nil
}

// Info returns the stream metadata for one band.
func (l *LIDARScanner) Info(band Band) stream.Info {
	return stream.Info{
		Band:  band.Name,
		CRS:   coord.LatLon{},
		Org:   stream.PointByPoint,
		Stamp: stream.StampMeasurementTime,
		VMin:  0, VMax: 1023,
	}
}

// shot returns the deterministic location of the i-th laser shot.
func (l *LIDARScanner) shot(i int64) geom.Vec2 {
	u := latticeNoise(l.Seed, i, 1, 0)
	v := latticeNoise(l.Seed, i, 2, 0)
	return geom.Vec2{
		X: l.Region.MinX + u*l.Region.Width(),
		Y: l.Region.MinY + v*l.Region.Height(),
	}
}

// Streams launches one producer per band.
func (l *LIDARScanner) Streams(g *stream.Group) (map[string]*stream.Stream, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	per := l.PointsPerChunk
	if per < 1 {
		per = 64
	}
	out := make(map[string]*stream.Stream, len(l.Bands))
	for _, band := range l.Bands {
		band := band
		out[band.Name] = stream.Generate(g, l.Info(band),
			func(ctx context.Context, emit func(*stream.Chunk) bool) error {
				shotIdx := int64(0)
				for ci := 0; ci < l.NumChunks; ci++ {
					pts := make([]stream.PointValue, per)
					for i := 0; i < per; i++ {
						p := l.shot(shotIdx)
						t := l.StartTime + geom.Timestamp(shotIdx)
						pts[i] = stream.PointValue{
							P: geom.Point{S: p, T: t},
							V: band.Field.Sample(p.X, p.Y, int64(t)),
						}
						shotIdx++
					}
					c, err := stream.NewPointsChunk(pts)
					if err != nil {
						return err
					}
					c.StampIngest(time.Now().UnixNano())
					if !emit(c) {
						return nil
					}
				}
				return nil
			})
	}
	return out, nil
}
