package sat

import (
	"context"
	"fmt"
	"math"
	"time"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

// Band pairs a spectral channel name with its radiance field.
type Band struct {
	Name  string
	Field Field
}

// Imager simulates a frame- or line-scanning instrument: a GOES-class
// satellite imager (row-by-row, Fig. 1b) or an airborne camera
// (image-by-image, Fig. 1a). Each spectral band becomes its own GeoStream,
// exactly as in §3.3 ("a satellite scans a spatial region for different
// spectral bands, each band resulting in a single GeoStream").
//
// The instrument scans the same sector once per band, bands in order — so
// with measurement-time stamping the bands' timestamps never coincide,
// reproducing the §3.3 pitfall, while with sector-id stamping they match.
type Imager struct {
	// Name identifies the instrument in stream metadata.
	Name string
	// CRS is the coordinate system of the scan lattice (GEOS for a real
	// GOES geometry; LatLon for cheaper workloads).
	CRS coord.CRS
	// Sector is the scan lattice of one sector.
	Sector geom.Lattice
	// Org is RowByRow or ImageByImage.
	Org stream.Organization
	// Bands are the spectral channels to scan.
	Bands []Band
	// Stamp selects sector-id or measurement-time stamping.
	Stamp stream.StampPolicy
	// RowsPerChunk batches scan lines per chunk in RowByRow mode
	// (default 1).
	RowsPerChunk int
	// NumSectors is how many sectors to emit before closing the streams.
	NumSectors int
	// StartSector is the first sector id.
	StartSector geom.Timestamp
	// EmitSectorMeta controls end-of-sector punctuation and Info metadata;
	// disabling it reproduces the §3.2 "no auxiliary information" case.
	EmitSectorMeta bool
	// Interval, when positive, paces the instrument: each band waits this
	// long between sectors (a live GOES imager produces a sector every
	// few minutes; servers and examples use a few milliseconds).
	Interval time.Duration

	// geoCache holds the geographic coordinates of every lattice cell
	// (the scan geometry is fixed across sectors, so inverse projection
	// happens once).
	geoCache []geoCell
}

type geoCell struct {
	lon, lat float64
	onEarth  bool
}

// Validate checks the imager configuration.
func (im *Imager) Validate() error {
	if im.CRS == nil {
		return fmt.Errorf("sat: imager %q has no CRS", im.Name)
	}
	if err := im.Sector.Validate(); err != nil {
		return fmt.Errorf("sat: imager %q sector: %w", im.Name, err)
	}
	if len(im.Bands) == 0 {
		return fmt.Errorf("sat: imager %q has no bands", im.Name)
	}
	if im.Org != stream.RowByRow && im.Org != stream.ImageByImage {
		return fmt.Errorf("sat: imager organization must be row-by-row or image-by-image")
	}
	if im.NumSectors < 1 {
		return fmt.Errorf("sat: imager must emit at least one sector")
	}
	return nil
}

// prepare computes the geographic coordinate cache.
func (im *Imager) prepare() {
	if im.geoCache != nil {
		return
	}
	n := im.Sector.NumPoints()
	im.geoCache = make([]geoCell, n)
	i := 0
	for r := 0; r < im.Sector.H; r++ {
		for c := 0; c < im.Sector.W; c++ {
			p := im.Sector.Coord(c, r)
			ll, err := im.CRS.Inverse(p)
			if err != nil {
				im.geoCache[i] = geoCell{onEarth: false}
			} else {
				im.geoCache[i] = geoCell{lon: ll.X, lat: ll.Y, onEarth: true}
			}
			i++
		}
	}
}

// Info returns the stream metadata for one band.
func (im *Imager) Info(band Band) stream.Info {
	return stream.Info{
		Band:          band.Name,
		CRS:           im.CRS,
		Org:           im.Org,
		Stamp:         im.Stamp,
		SectorGeom:    im.Sector,
		HasSectorMeta: im.EmitSectorMeta,
		VMin:          0,
		VMax:          1023,
	}
}

// Streams launches one producer goroutine per band inside the group and
// returns the band streams keyed by name.
func (im *Imager) Streams(g *stream.Group) (map[string]*stream.Stream, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	im.prepare()
	out := make(map[string]*stream.Stream, len(im.Bands))
	for bi, band := range im.Bands {
		bi, band := bi, band
		out[band.Name] = stream.Generate(g, im.Info(band),
			func(ctx context.Context, emit func(*stream.Chunk) bool) error {
				return im.produceBand(ctx, bi, band, emit)
			})
	}
	return out, nil
}

// stampFor computes the chunk timestamp per the stamping policy. With
// measurement-time stamping, each band of each sector gets a distinct
// simulated acquisition time: the instrument scans band after band, so
// band b of sector s is acquired at s*len(bands)+b time units.
func (im *Imager) stampFor(sector geom.Timestamp, bandIdx int) geom.Timestamp {
	if im.Stamp == stream.StampMeasurementTime {
		return sector*geom.Timestamp(len(im.Bands)*1000) + geom.Timestamp(bandIdx*1000)
	}
	return sector
}

// renderRows renders rows [r0, r1) of a sector for a band.
func (im *Imager) renderRows(band Band, sector geom.Timestamp, r0, r1 int) []float64 {
	w := im.Sector.W
	vals := make([]float64, (r1-r0)*w)
	for r := r0; r < r1; r++ {
		for c := 0; c < w; c++ {
			cell := im.geoCache[r*w+c]
			if !cell.onEarth {
				vals[(r-r0)*w+c] = math.NaN()
				continue
			}
			vals[(r-r0)*w+c] = band.Field.Sample(cell.lon, cell.lat, int64(sector))
		}
	}
	return vals
}

func (im *Imager) produceBand(ctx context.Context, bandIdx int, band Band, emit func(*stream.Chunk) bool) error {
	rowsPer := im.RowsPerChunk
	if rowsPer < 1 {
		rowsPer = 1
	}
	var tick *time.Ticker
	if im.Interval > 0 {
		tick = time.NewTicker(im.Interval)
		defer tick.Stop()
	}
	for s := 0; s < im.NumSectors; s++ {
		if tick != nil && s > 0 {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return nil
			}
		}
		sector := im.StartSector + geom.Timestamp(s)
		t := im.stampFor(sector, bandIdx)
		switch im.Org {
		case stream.ImageByImage:
			vals := im.renderRows(band, sector, 0, im.Sector.H)
			c, err := stream.NewGridChunk(t, im.Sector, vals)
			if err != nil {
				return err
			}
			c.StampIngest(time.Now().UnixNano())
			if !emit(c) {
				return nil
			}
		case stream.RowByRow:
			for r0 := 0; r0 < im.Sector.H; r0 += rowsPer {
				r1 := r0 + rowsPer
				if r1 > im.Sector.H {
					r1 = im.Sector.H
				}
				c, err := stream.NewGridChunk(t, im.Sector.Rows(r0, r1), im.renderRows(band, sector, r0, r1))
				if err != nil {
					return err
				}
				c.StampIngest(time.Now().UnixNano())
				if !emit(c) {
					return nil
				}
			}
		}
		if im.EmitSectorMeta {
			eos := stream.NewEndOfSector(t, im.Sector)
			eos.StampIngest(time.Now().UnixNano())
			if !emit(eos) {
				return nil
			}
		}
	}
	return nil
}

// NewGOESImager builds a GOES-class imager: a GEOS scan-angle sector over
// a geographic region viewed from subLon, scanned row-by-row. The sector
// lattice is the scan-angle bounding box of the region at the requested
// grid size — the shape of a real GOES "scan sector" (§3.3).
func NewGOESImager(subLon float64, region geom.Rect, w, h int, scene *Scene, bands []string, sectors int) (*Imager, error) {
	g := coord.NewGEOS(subLon)
	box, err := coord.MapRect(coord.LatLon{}, g, region, 16)
	if err != nil {
		return nil, fmt.Errorf("sat: region not visible from geos:%g: %w", subLon, err)
	}
	// A GOES imager sweeps the sector north to south. Northern latitudes
	// have the most negative GEOS scan angle y, so row 0 sits at box.MinY
	// and y increases down the sector.
	lat, err := geom.NewLattice(box.MinX, box.MinY,
		box.Width()/float64(w-1), box.Height()/float64(h-1), w, h)
	if err != nil {
		return nil, err
	}
	bs := make([]Band, len(bands))
	for i, name := range bands {
		bs[i] = Band{Name: name, Field: scene.BandField(name)}
	}
	return &Imager{
		Name:           fmt.Sprintf("goes@%g", subLon),
		CRS:            g,
		Sector:         lat,
		Org:            stream.RowByRow,
		Bands:          bs,
		Stamp:          stream.StampSectorID,
		NumSectors:     sectors,
		EmitSectorMeta: true,
	}, nil
}

// NewLatLonImager builds a cheap instrument scanning directly in
// geographic coordinates — the standard workload generator for benchmarks
// that do not exercise projection math.
func NewLatLonImager(region geom.Rect, w, h int, scene *Scene, bands []string, org stream.Organization, sectors int) (*Imager, error) {
	lat, err := geom.NewLattice(region.MinX, region.MaxY,
		region.Width()/float64(w-1), -region.Height()/float64(h-1), w, h)
	if err != nil {
		return nil, err
	}
	bs := make([]Band, len(bands))
	for i, name := range bands {
		bs[i] = Band{Name: name, Field: scene.BandField(name)}
	}
	return &Imager{
		Name:           "latlon-imager",
		CRS:            coord.LatLon{},
		Sector:         lat,
		Org:            org,
		Bands:          bs,
		Stamp:          stream.StampSectorID,
		NumSectors:     sectors,
		EmitSectorMeta: true,
	}, nil
}
