package exec

import (
	"sync"
	"sync/atomic"
)

// Block API: the 1-D twin of ForRows/MapRows for kernels that operate on a
// flat []float64 slab with no per-row structure. Point-wise stages (value
// transforms, fused chains, compose arithmetic) are element-independent, so
// sharding at arbitrary element boundaries is safe and lets each worker
// sweep one long contiguous range — no per-row closure re-dispatch, and
// loop bodies the compiler can keep in registers.
//
// The contract matches ForRows exactly:
//
//   - Determinism: shard boundaries depend only on n, never on worker count
//     or scheduling; MapBlocks merges partials in shard order.
//   - ParallelCutoff: loops under the cutoff run as a single scalar call.
//   - Non-blocking submission: the caller always participates; a saturated
//     pool degrades to scalar execution.

// blockShard picks the shard length for an n-element loop. Like shardRows,
// the boundary depends only on the geometry (n), so reductions merged in
// shard order are bit-identical at any parallelism.
func blockShard(n int) int {
	step := ParallelCutoff / 4
	if step > n {
		step = n
	}
	if step < 1 {
		step = 1
	}
	return step
}

// ForBlocks runs fn over [0, n), splitting it into contiguous [i0, i1)
// shards executed concurrently on the shared pool. Loops under
// ParallelCutoff elements (or with parallelism 1) run as a single scalar
// call. fn must be safe to run concurrently for disjoint element ranges —
// point-wise kernels satisfy this by writing only dst[i0:i1].
func ForBlocks(n int, fn func(i0, i1 int)) {
	p := Parallelism()
	if n <= 0 {
		return
	}
	if p <= 1 || n < ParallelCutoff {
		scalarKernels.Add(1)
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)

	step := blockShard(n)
	var cursor atomic.Int64
	run := func() {
		for {
			i1 := int(cursor.Add(int64(step)))
			i0 := i1 - step
			if i0 >= n {
				return
			}
			if i1 > n {
				i1 = n
			}
			shardsRun.Add(1)
			fn(i0, i1)
		}
	}

	helpers := (n + step - 1) / step
	if helpers > p {
		helpers = p
	}
	helpers-- // the caller is a worker too
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		task := func() { defer wg.Done(); run() }
		select {
		case tasks <- task:
		default:
			wg.Done()
			i = helpers
		}
	}
	run()
	wg.Wait()
	parallelKernels.Add(1)
}

// MapBlocks computes one partial result per fixed element shard of an
// n-element loop — concurrently when the loop is large — and returns the
// partials indexed by shard, in element order. Merging the partials in
// slice order keeps reductions bit-identical at any parallelism.
func MapBlocks[T any](n int, fn func(i0, i1 int) T) []T {
	if n <= 0 {
		return nil
	}
	step := blockShard(n)
	shards := (n + step - 1) / step
	out := make([]T, shards)
	// Treat each shard as one "row" of width step: ForRows distributes the
	// shard indices across the pool with the same cutoff and determinism
	// rules, and the fixed index→range mapping keeps partials in element
	// order regardless of which worker computes them.
	ForRows(shards, step, func(s0, s1 int) {
		for s := s0; s < s1; s++ {
			i0 := s * step
			i1 := i0 + step
			if i1 > n {
				i1 = n
			}
			out[s] = fn(i0, i1)
		}
	})
	return out
}
