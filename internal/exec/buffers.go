package exec

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Grid-buffer allocator: a size-classed sync.Pool front for the []float64
// value slices that dominate the engine's steady-state allocation rate
// (one per chunk per dense operator). Classes are powers of two from
// minClassBits to maxClassBits; a request rounds up to its class and is
// re-sliced to the exact length.
//
// Ownership rule (load-bearing — see stream/chunk.go): a buffer may be
// recycled only while its ownership is provably unique, i.e. operator- or
// delivery-private scratch that never escaped into a published chunk.
// Chunks are immutable once sent and may be shared by any number of
// consumers through Tee and the DSMS hubs, so a chunk's Vals must NEVER be
// recycled by a consumer. The payoff still reaches published chunks:
// AllocVals hands recycled private scratch back out at kernel allocation
// sites, so the pool shrinks total allocation even though only private
// buffers flow back in.

const (
	minClassBits = 8  // 256 values (2 KiB) — below this, malloc is cheap enough
	maxClassBits = 24 // 16M values (128 MiB) — above this, pooling pins too much
	numClasses   = maxClassBits - minClassBits + 1
)

var (
	classes [numClasses]sync.Pool

	poolHits     atomic.Int64
	poolMisses   atomic.Int64
	poolRecycles atomic.Int64
	poolBypass   atomic.Int64 // requests outside the pooled size range
)

// classOf returns the size-class index whose capacity (2^(minClassBits+i))
// holds n values, or -1 when n is outside the pooled range.
func classOf(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// AllocVals returns a []float64 of length n for a grid kernel's output.
// The contents are UNDEFINED — callers must write every element (every
// dense kernel does: it fills the full lattice, using NaN for absent
// points). Buffers come from the recycle pool when a class match is
// available and from the heap otherwise.
func AllocVals(n int) []float64 {
	c := classOf(n)
	if c < 0 {
		poolBypass.Add(1)
		return make([]float64, n)
	}
	if v, ok := classes[c].Get().(*[]float64); ok {
		poolHits.Add(1)
		return (*v)[:n]
	}
	poolMisses.Add(1)
	return make([]float64, n, 1<<(minClassBits+c))
}

// Recycle returns a buffer to its size-class pool. Only call it on buffers
// whose ownership is provably unique (operator-private scratch); never on
// the Vals of a chunk that has been sent downstream. Buffers whose
// capacity is not an exact pooled class (e.g. sub-slices of foreign
// storage) are dropped on the floor.
func Recycle(v []float64) {
	c := cap(v)
	if c == 0 || c&(c-1) != 0 { // not a power of two: not ours
		return
	}
	b := bits.Len(uint(c)) - 1
	if b < minClassBits || b > maxClassBits {
		return
	}
	poolRecycles.Add(1)
	full := v[:c]
	classes[b-minClassBits].Put(&full)
}
