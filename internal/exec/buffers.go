package exec

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Grid-buffer allocator: a size-classed sync.Pool front for the []float64
// value slices that dominate the engine's steady-state allocation rate
// (one per chunk per dense operator). Classes are powers of two from
// minClassBits to maxClassBits; a request rounds up to its class and is
// re-sliced to the exact length.
//
// Ownership rule (load-bearing — see stream/chunk.go and DESIGN.md §12): a
// buffer may be recycled only while its ownership is provably unique.
// There are two ways to prove it:
//
//   - Private scratch: operator- or delivery-local buffers that never
//     escaped into a published chunk. Recycle directly when done.
//   - Ref-counted pooled chunks: a chunk built with stream.NewPooledGrid
//     carries a reference count; fan-out points Retain extra references and
//     every consumer Releases exactly once when it stops using the chunk.
//     The final Release recycles the Vals here. Chunks without pool state
//     (plain constructors, test literals) make Retain/Release no-ops, so
//     their Vals are never recycled by a consumer — the pre-PR-7 rule.

const (
	minClassBits = 8  // 256 values (2 KiB) — below this, malloc is cheap enough
	maxClassBits = 24 // 16M values (128 MiB) — above this, pooling pins too much
	numClasses   = maxClassBits - minClassBits + 1
)

var (
	classes [numClasses]sync.Pool

	poolHits     atomic.Int64
	poolMisses   atomic.Int64
	poolRecycles atomic.Int64
	poolBypass   atomic.Int64 // requests outside the pooled size range
	poolSteals   atomic.Int64 // served from a larger class when the exact one was empty
)

// stealClasses is how many size classes above the exact fit AllocVals will
// probe when the exact class is empty. One class up wastes at most half the
// buffer; further up wastes too much memory to be worth saving the malloc.
const stealClasses = 2

// headerPool recycles the *[]float64 boxes the class pools store, so a
// steady-state alloc/recycle cycle allocates nothing: Put would otherwise
// heap-allocate a fresh slice header per recycle to box the interface.
var headerPool = sync.Pool{New: func() any { return new([]float64) }}

// getClass pops a buffer from class pool i, returning its header box to
// headerPool.
func getClass(i int) ([]float64, bool) {
	p, ok := classes[i].Get().(*[]float64)
	if !ok {
		return nil, false
	}
	v := *p
	*p = nil
	headerPool.Put(p)
	return v, true
}

// classOf returns the size-class index whose capacity (2^(minClassBits+i))
// holds n values, or -1 when n is outside the pooled range.
func classOf(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		b = minClassBits
	}
	return b - minClassBits
}

// AllocVals returns a []float64 of length n for a grid kernel's output.
// The contents are UNDEFINED — callers must write every element (every
// dense kernel does: it fills the full lattice, using NaN for absent
// points). Buffers come from the recycle pool when a class match is
// available and from the heap otherwise.
func AllocVals(n int) []float64 {
	v, _ := AllocValsPooled(n)
	return v
}

// AllocValsPooled is AllocVals reporting provenance: fromPool is true when
// the buffer was recycled (an exact-class hit or a larger-class steal) and
// false when it came from the heap. The wire ingest path uses the flag to
// account residual decode allocation (wire_ingest_alloc_bytes).
func AllocValsPooled(n int) ([]float64, bool) {
	c := classOf(n)
	if c < 0 {
		poolBypass.Add(1)
		return make([]float64, n), false
	}
	if v, ok := getClass(c); ok {
		poolHits.Add(1)
		return v[:n], true
	}
	// Exact class empty: steal from a slightly larger one before paying the
	// heap. Recycle routes by capacity, so a stolen buffer returns to its
	// true (larger) class, not the class it was borrowed for.
	for s := c + 1; s < numClasses && s <= c+stealClasses; s++ {
		if v, ok := getClass(s); ok {
			poolSteals.Add(1)
			return v[:n], true
		}
	}
	poolMisses.Add(1)
	return make([]float64, n, 1<<(minClassBits+c)), false
}

// Recycle returns a buffer to its size-class pool. Only call it on buffers
// whose ownership is provably unique (operator-private scratch); never on
// the Vals of a chunk that has been sent downstream. Buffers whose
// capacity is not an exact pooled class (e.g. sub-slices of foreign
// storage) are dropped on the floor.
func Recycle(v []float64) {
	c := cap(v)
	if c == 0 || c&(c-1) != 0 { // not a power of two: not ours
		return
	}
	b := bits.Len(uint(c)) - 1
	if b < minClassBits || b > maxClassBits {
		return
	}
	poolRecycles.Add(1)
	p := headerPool.Get().(*[]float64)
	*p = v[:c]
	classes[b-minClassBits].Put(p)
}
