package exec

import (
	"sync/atomic"

	"geostreams/internal/obs"
)

// Fusion telemetry, recorded by the query planner when it wires a
// FusedPointwise operator (internal/query): how many fused operators were
// built and how many constituent point-wise stages they absorbed. Lives
// here so every engine counter is exported by one collector.
var (
	fusedOperators atomic.Int64
	fusedStages    atomic.Int64
)

// CountFusion records one fused operator replacing n point-wise stages.
func CountFusion(n int) {
	fusedOperators.Add(1)
	fusedStages.Add(int64(n))
}

// Stats is a point-in-time snapshot of the execution-engine counters.
type Stats struct {
	Parallelism     int   `json:"parallelism"`
	ParallelKernels int64 `json:"parallel_kernels"`
	ScalarKernels   int64 `json:"scalar_kernels"`
	Shards          int64 `json:"shards"`
	PoolHits        int64 `json:"pool_hits"`
	PoolMisses      int64 `json:"pool_misses"`
	PoolRecycles    int64 `json:"pool_recycles"`
	PoolBypass      int64 `json:"pool_bypass"`
	PoolSteals      int64 `json:"pool_steals"`
	FusedOperators  int64 `json:"fused_operators"`
	FusedStages     int64 `json:"fused_stages"`
}

// Snapshot reads the engine counters.
func Snapshot() Stats {
	return Stats{
		Parallelism:     Parallelism(),
		ParallelKernels: parallelKernels.Load(),
		ScalarKernels:   scalarKernels.Load(),
		Shards:          shardsRun.Load(),
		PoolHits:        poolHits.Load(),
		PoolMisses:      poolMisses.Load(),
		PoolRecycles:    poolRecycles.Load(),
		PoolBypass:      poolBypass.Load(),
		PoolSteals:      poolSteals.Load(),
		FusedOperators:  fusedOperators.Load(),
		FusedStages:     fusedStages.Load(),
	}
}

// Collector exposes the engine counters as geostreams_exec_* metrics; the
// DSMS server registers it so /metrics carries pool hit-rate, kernel
// sharding, and fusion counts alongside the per-operator telemetry.
func Collector() obs.Collector {
	return obs.CollectorFunc(func(e *obs.Exposition) {
		s := Snapshot()
		e.Gauge("geostreams_exec_parallelism",
			"Worker-pool target size for data-parallel grid kernels.",
			float64(s.Parallelism))
		e.Counter("geostreams_exec_parallel_kernels_total",
			"Dense-kernel invocations executed row-sharded on the worker pool.",
			float64(s.ParallelKernels))
		e.Counter("geostreams_exec_scalar_kernels_total",
			"Dense-kernel invocations that stayed scalar (under the size cutoff or parallelism 1).",
			float64(s.ScalarKernels))
		e.Counter("geostreams_exec_kernel_shards_total",
			"Row shards executed across all parallel kernel invocations.",
			float64(s.Shards))
		e.Counter("geostreams_exec_pool_hits_total",
			"Grid-buffer allocations served from the size-classed recycle pool.",
			float64(s.PoolHits))
		e.Counter("geostreams_exec_pool_misses_total",
			"Grid-buffer allocations that fell through to the heap.",
			float64(s.PoolMisses))
		e.Counter("geostreams_exec_pool_recycles_total",
			"Operator-private grid buffers returned to the recycle pool.",
			float64(s.PoolRecycles))
		e.Counter("geostreams_exec_pool_bypass_total",
			"Grid-buffer allocations outside the pooled size range.",
			float64(s.PoolBypass))
		e.Counter("geostreams_exec_pool_steals_total",
			"Grid-buffer allocations served from a larger size class because the exact class was empty.",
			float64(s.PoolSteals))
		e.Counter("geostreams_exec_fused_operators_total",
			"FusedPointwise operators wired by the planner.",
			float64(s.FusedOperators))
		e.Counter("geostreams_exec_fused_stages_total",
			"Point-wise plan stages absorbed into fused operators.",
			float64(s.FusedStages))
	})
}
