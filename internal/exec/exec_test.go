package exec

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestForRowsCoversEveryRowOnce(t *testing.T) {
	for _, h := range []int{1, 2, 7, 64, 500, 4096} {
		w := 64
		hits := make([]int32, h)
		var mu sync.Mutex
		ForRows(h, w, func(r0, r1 int) {
			if r0 < 0 || r1 > h || r0 >= r1 {
				t.Errorf("bad shard [%d, %d) for h=%d", r0, r1, h)
			}
			mu.Lock()
			for r := r0; r < r1; r++ {
				hits[r]++
			}
			mu.Unlock()
		})
		for r, n := range hits {
			if n != 1 {
				t.Fatalf("h=%d: row %d visited %d times", h, r, n)
			}
		}
	}
}

func TestForRowsScalarUnderCutoff(t *testing.T) {
	calls := 0
	ForRows(10, 10, func(r0, r1 int) { calls++ })
	if calls != 1 {
		t.Fatalf("small loop split into %d shards, want 1 scalar call", calls)
	}
}

func TestForRowsRespectsParallelismOne(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	calls := 0
	ForRows(4096, 4096, func(r0, r1 int) { calls++ })
	if calls != 1 {
		t.Fatalf("parallelism 1 split into %d shards, want 1", calls)
	}
}

// TestMapRowsDeterministic asserts the bit-identity contract: the shard
// partials (and therefore any in-order merge of them) are the same at
// parallelism 1 and at full parallelism.
func TestMapRowsDeterministic(t *testing.T) {
	h, w := 1024, 512
	vals := make([]float64, h*w)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1000
	}
	sum := func(r0, r1 int) float64 {
		s := 0.0
		for i := r0 * w; i < r1*w; i++ {
			s += vals[i]
		}
		return s
	}
	merge := func(parts []float64) float64 {
		s := 0.0
		for _, p := range parts {
			s += p
		}
		return s
	}

	SetParallelism(1)
	scalar := merge(MapRows(h, w, sum))
	SetParallelism(0)
	parallel := merge(MapRows(h, w, sum))
	if math.Float64bits(scalar) != math.Float64bits(parallel) {
		t.Fatalf("MapRows reduction not bit-identical: scalar %x parallel %x",
			math.Float64bits(scalar), math.Float64bits(parallel))
	}
}

func TestAllocValsClassesAndRecycle(t *testing.T) {
	v := AllocVals(1000)
	if len(v) != 1000 {
		t.Fatalf("len = %d, want 1000", len(v))
	}
	if cap(v) != 1024 {
		t.Fatalf("cap = %d, want 1024 (next size class)", cap(v))
	}
	Recycle(v)
	// The recycled buffer should come back for a same-class request.
	w := AllocVals(600)
	if cap(w) != 1024 {
		t.Fatalf("recycled cap = %d, want 1024", cap(w))
	}

	// Outside the pooled range: plain heap allocations, exact length.
	big := AllocVals(1<<maxClassBits + 1)
	if len(big) != 1<<maxClassBits+1 {
		t.Fatalf("oversize len = %d", len(big))
	}
	Recycle(big[:0]) // cap not a pooled class; must be dropped silently
}

func TestRecycleForeignBufferIgnored(t *testing.T) {
	// A sub-slice of foreign storage must not poison the pool.
	backing := make([]float64, 300)
	Recycle(backing[10:20])
}

// TestPoolStressRace hammers the shared pool and allocator from many
// goroutines at once — the concurrent-queries scenario — and is the
// anchor for `go test -race ./internal/exec`.
func TestPoolStressRace(t *testing.T) {
	const goroutines = 16
	const iters = 40
	h, w := 256, 256
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			src := make([]float64, h*w)
			for i := range src {
				src[i] = rng.Float64()
			}
			for it := 0; it < iters; it++ {
				dst := AllocVals(h * w)
				ForRows(h, w, func(r0, r1 int) {
					for i := r0 * w; i < r1*w; i++ {
						dst[i] = src[i]*2 + 1
					}
				})
				for i := 0; i < h*w; i += 4097 {
					if dst[i] != src[i]*2+1 {
						t.Errorf("goroutine %d iter %d: dst[%d] = %g, want %g",
							seed, it, i, dst[i], src[i]*2+1)
						return
					}
				}
				Recycle(dst)
			}
		}(int64(gi))
	}
	wg.Wait()
}

func BenchmarkForRows(b *testing.B) {
	h, w := 1024, 1024
	src := make([]float64, h*w)
	dst := make([]float64, h*w)
	b.SetBytes(int64(h * w * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForRows(h, w, func(r0, r1 int) {
			for j := r0 * w; j < r1*w; j++ {
				dst[j] = src[j]*0.5 + 3
			}
		})
	}
}
