package exec

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestForBlocksCoversEveryElementOnce(t *testing.T) {
	for _, n := range []int{1, 2, 7, ParallelCutoff - 1, ParallelCutoff,
		ParallelCutoff*4 + 13, 1 << 20} {
		hits := make([]int32, n)
		var mu sync.Mutex
		ForBlocks(n, func(i0, i1 int) {
			if i0 < 0 || i1 > n || i0 >= i1 {
				t.Errorf("bad shard [%d, %d) for n=%d", i0, i1, n)
			}
			mu.Lock()
			for i := i0; i < i1; i++ {
				hits[i]++
			}
			mu.Unlock()
		})
		for i, c := range hits {
			if c != 1 {
				t.Fatalf("n=%d: element %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForBlocksScalarUnderCutoff(t *testing.T) {
	calls := 0
	ForBlocks(ParallelCutoff-1, func(i0, i1 int) { calls++ })
	if calls != 1 {
		t.Fatalf("small loop split into %d shards, want 1 scalar call", calls)
	}
}

func TestForBlocksRespectsParallelismOne(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	calls := 0
	ForBlocks(1<<22, func(i0, i1 int) { calls++ })
	if calls != 1 {
		t.Fatalf("parallelism 1 split into %d shards, want 1", calls)
	}
}

// TestForBlocksShardBoundariesDeterministic: shard boundaries depend only
// on n, so the set of [i0, i1) ranges is identical at any parallelism —
// the precondition for blocked kernels being bit-identical.
func TestForBlocksShardBoundariesDeterministic(t *testing.T) {
	n := ParallelCutoff*8 + 31
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		set := map[[2]int]bool{}
		ForBlocks(n, func(i0, i1 int) {
			mu.Lock()
			set[[2]int{i0, i1}] = true
			mu.Unlock()
		})
		return set
	}
	SetParallelism(8)
	par := collect()
	SetParallelism(2)
	defer SetParallelism(0)
	two := collect()
	if len(par) != len(two) {
		t.Fatalf("shard count differs: %d vs %d", len(par), len(two))
	}
	for k := range par {
		if !two[k] {
			t.Fatalf("shard %v present at parallelism 8 but not 2", k)
		}
	}
}

// TestMapBlocksDeterministic mirrors TestMapRowsDeterministic for the 1-D
// API: in-order merges of the shard partials are bit-identical at
// parallelism 1 and full parallelism.
func TestMapBlocksDeterministic(t *testing.T) {
	n := 1 << 20
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1000
	}
	sum := func(i0, i1 int) float64 {
		s := 0.0
		for i := i0; i < i1; i++ {
			s += vals[i]
		}
		return s
	}
	merge := func(parts []float64) float64 {
		s := 0.0
		for _, p := range parts {
			s += p
		}
		return s
	}

	SetParallelism(1)
	scalar := merge(MapBlocks(n, sum))
	SetParallelism(0)
	parallel := merge(MapBlocks(n, sum))
	if math.Float64bits(scalar) != math.Float64bits(parallel) {
		t.Fatalf("MapBlocks reduction not bit-identical: scalar %x parallel %x",
			math.Float64bits(scalar), math.Float64bits(parallel))
	}
}

// TestAllocValsPooledProvenance pins the fromPool flag the wire ingest
// path uses for its residual-allocation counter.
func TestAllocValsPooledProvenance(t *testing.T) {
	// Drain luck out of the picture: take from an odd class until it
	// misses, then recycle and observe a hit.
	n := 3000
	v, _ := AllocValsPooled(n)
	Recycle(v)
	w, fromPool := AllocValsPooled(n)
	if !fromPool {
		t.Fatal("allocation after recycle of same class not served from pool")
	}
	if len(w) != n {
		t.Fatalf("len = %d, want %d", len(w), n)
	}
	Recycle(w)

	big, fromPool := AllocValsPooled(1<<maxClassBits + 1)
	if fromPool {
		t.Fatal("out-of-range allocation claimed pool provenance")
	}
	_ = big
}
