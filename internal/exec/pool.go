// Package exec is the data-parallel execution engine under the GeoStreams
// operator implementations. The paper's §3 cost model prices restrictions
// and point-wise transforms at O(1) per point; this package makes the
// constant small on real hardware by turning the per-pixel loops of the
// dense grid kernels into row-sharded bulk work over a process-wide worker
// pool (the CPU analogue of the GPU-friendly bulk-kernel reformulation in
// Doraiswamy & Freire's spatial algebra), and by recycling grid value
// buffers through a size-classed allocator so steady-state chunk processing
// stops paying one fresh allocation per chunk per stage.
//
// Three properties are load-bearing for the operators built on top:
//
//   - Determinism: ForRows and MapRows shard work at boundaries that depend
//     only on the loop geometry, never on the worker count or scheduling,
//     and MapRows merges partial results in shard order. A kernel computed
//     at parallelism 16 is bit-identical to the same kernel at parallelism
//     1 (the property tests in internal/query assert this end to end).
//   - Non-blocking submission: callers always execute shards themselves
//     while idle pool workers steal the rest, so a busy pool degrades to
//     scalar execution instead of queueing or deadlocking — kernel latency
//     under load never exceeds the single-threaded cost.
//   - Bounded concurrency: one pool, sized once from GOMAXPROCS (or the
//     GEOSTREAMS_PARALLELISM override), is shared by every operator of
//     every concurrent query, so N queries cannot oversubscribe the
//     machine with N×GOMAXPROCS kernel goroutines.
package exec

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// ParallelCutoff is the loop size (in points) below which ForRows and
// MapRows stay scalar: sharding a few thousand points across goroutines
// costs more in wake-ups than the loop itself. Row-by-row streams (one
// scan line per chunk) land under the cutoff and keep their existing
// single-core latency; image-by-image frames land far above it.
const ParallelCutoff = 16384

var (
	// parallelism is the target worker count; 0 means "resolve from
	// GOMAXPROCS at use".
	parallelism atomic.Int64

	poolOnce sync.Once
	tasks    chan func()

	// Engine telemetry (geostreams_exec_*, see Collector).
	parallelKernels atomic.Int64
	scalarKernels   atomic.Int64
	shardsRun       atomic.Int64
)

func init() {
	if s := os.Getenv("GEOSTREAMS_PARALLELISM"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			SetParallelism(n)
		}
	}
}

// Parallelism returns the engine's target worker count: the value set by
// SetParallelism (or the GEOSTREAMS_PARALLELISM environment variable),
// defaulting to GOMAXPROCS.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the target worker count; n <= 0 restores the
// GOMAXPROCS default. Parallelism 1 forces every kernel scalar. The shared
// pool is sized at first use; lowering the target afterwards reduces how
// many workers a kernel will occupy, raising it beyond the pool size only
// has effect before the first parallel kernel runs.
func SetParallelism(n int) {
	if n <= 0 {
		parallelism.Store(0)
		return
	}
	parallelism.Store(int64(n))
}

// startPool launches the process-wide workers. The task channel is
// unbuffered on purpose: a submit succeeds only when a worker is idle and
// already receiving, which is what lets ForRows hand off work with a
// non-blocking send and absorb the remainder on the calling goroutine.
func startPool() {
	n := Parallelism()
	if n < 2 {
		n = 2 // a later SetParallelism may raise the target
	}
	tasks = make(chan func())
	for i := 0; i < n; i++ {
		go func() {
			for f := range tasks {
				f()
			}
		}()
	}
}

// shardRows picks the shard height for an h×w loop: small enough for load
// balancing across the pool, large enough that each shard clears a
// meaningful fraction of the cutoff. The boundaries depend only on (h, w),
// never on the worker count, so shard-order-merged reductions are
// reproducible at any parallelism.
func shardRows(h, w int) int {
	if w <= 0 {
		w = 1
	}
	rows := (ParallelCutoff/4 + w - 1) / w
	if rows < 1 {
		rows = 1
	}
	if rows > h {
		rows = h
	}
	return rows
}

// ForRows runs fn over the row range [0, h) of an h×w grid loop,
// splitting it into contiguous [r0, r1) shards executed concurrently on
// the shared pool. The caller always participates, idle workers join, and
// the call returns when every shard is done. Loops under ParallelCutoff
// points (or with parallelism 1) run as a single scalar call.
//
// fn must be safe to run concurrently for disjoint row ranges — the dense
// kernels satisfy this by writing only rows [r0, r1) of their output
// buffer.
func ForRows(h, w int, fn func(r0, r1 int)) {
	p := Parallelism()
	if h <= 0 {
		return
	}
	if p <= 1 || h*w < ParallelCutoff || h == 1 {
		scalarKernels.Add(1)
		fn(0, h)
		return
	}
	poolOnce.Do(startPool)

	step := shardRows(h, w)
	var cursor atomic.Int64
	run := func() {
		for {
			r1 := int(cursor.Add(int64(step)))
			r0 := r1 - step
			if r0 >= h {
				return
			}
			if r1 > h {
				r1 = h
			}
			shardsRun.Add(1)
			fn(r0, r1)
		}
	}

	helpers := (h + step - 1) / step // no point waking more workers than shards
	if helpers > p {
		helpers = p
	}
	helpers-- // the caller is a worker too
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		task := func() { defer wg.Done(); run() }
		select {
		case tasks <- task:
		default:
			// Pool saturated by other kernels: stop recruiting and let the
			// caller absorb the remaining shards.
			wg.Done()
			i = helpers
		}
	}
	run()
	wg.Wait()
	parallelKernels.Add(1)
}

// MapRows computes one partial result per fixed row shard of an h×w loop —
// concurrently on the shared pool when the loop is large — and returns the
// partials indexed by shard, in row order. Callers merge the partials in
// slice order, which makes reductions (moments, histograms) bit-identical
// at any parallelism: shard boundaries depend only on the geometry, and
// floating-point accumulation order is fixed by the in-order merge.
func MapRows[T any](h, w int, fn func(r0, r1 int) T) []T {
	if h <= 0 {
		return nil
	}
	step := shardRows(h, w)
	n := (h + step - 1) / step
	out := make([]T, n)
	ForRows(n, step*w, func(s0, s1 int) {
		for s := s0; s < s1; s++ {
			r0 := s * step
			r1 := r0 + step
			if r1 > h {
				r1 = h
			}
			out[s] = fn(r0, r1)
		}
	})
	return out
}
