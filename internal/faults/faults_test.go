package faults

import (
	"context"
	"testing"
	"time"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
	"geostreams/internal/stream"
)

func testInfo(lat geom.Lattice) stream.Info {
	return stream.Info{
		Band: "vis", CRS: coord.LatLon{}, Org: stream.ImageByImage,
		SectorGeom: lat, HasSectorMeta: true, VMin: 0, VMax: 1023,
	}
}

// feed builds n sectors: one grid chunk plus end-of-sector punctuation each.
func feed(t *testing.T, lat geom.Lattice, n int) []*stream.Chunk {
	t.Helper()
	var out []*stream.Chunk
	for s := 0; s < n; s++ {
		c, err := stream.NewGridChunk(geom.Timestamp(s), lat, make([]float64, lat.NumPoints()))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c, stream.NewEndOfSector(geom.Timestamp(s), lat))
	}
	return out
}

func testLat(t *testing.T) geom.Lattice {
	t.Helper()
	lat, err := geom.NewLattice(0, 3, 1, -1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func runWrapped(t *testing.T, chunks []*stream.Chunk, p Policy) ([]*stream.Chunk, *Injector, error) {
	t.Helper()
	lat := testLat(t)
	g := stream.NewGroup(context.Background())
	f := New(p)
	out := f.Wrap(g, stream.FromChunks(g, testInfo(lat), chunks))
	got, err := stream.Collect(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	return got, f, g.Wait()
}

func kinds(cs []*stream.Chunk) (data, punct int) {
	for _, c := range cs {
		if c.IsData() {
			data++
		} else {
			punct++
		}
	}
	return
}

func TestPassThroughWithZeroPolicy(t *testing.T) {
	lat := testLat(t)
	in := feed(t, lat, 5)
	got, f, err := runWrapped(t, in, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("pass-through delivered %d of %d chunks", len(got), len(in))
	}
	if f.Dropped.Load()+f.Duplicated.Load()+f.Reordered.Load() != 0 {
		t.Fatal("zero policy injected faults")
	}
}

func TestDropNeverShedsPunctuation(t *testing.T) {
	lat := testLat(t)
	in := feed(t, lat, 50)
	got, f, err := runWrapped(t, in, Policy{Seed: 7, Drop: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	data, punct := kinds(got)
	if punct != 50 {
		t.Fatalf("punctuation dropped: %d of 50 survived", punct)
	}
	if f.Dropped.Load() == 0 || data == 50 {
		t.Fatalf("drop rate 0.5 dropped %d of 50 data chunks", f.Dropped.Load())
	}
	if f.Dropped.Load()+int64(data) != 50 {
		t.Fatalf("dropped %d + delivered %d != 50", f.Dropped.Load(), data)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	lat := testLat(t)
	p := Policy{Seed: 42, Drop: 0.2, Duplicate: 0.1, Reorder: 0.2}
	a, _, err := runWrapped(t, feed(t, lat, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runWrapped(t, feed(t, lat, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].T != b[i].T || a[i].Kind != b[i].Kind {
			t.Fatalf("replay diverged at %d: (%d,%v) vs (%d,%v)",
				i, a[i].T, a[i].Kind, b[i].T, b[i].Kind)
		}
	}
}

func TestReorderIsAdjacentAndSectorBounded(t *testing.T) {
	lat := testLat(t)
	got, f, err := runWrapped(t, feed(t, lat, 100), Policy{Seed: 3, Reorder: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Reordered.Load() == 0 {
		t.Fatal("no reorders at rate 0.5")
	}
	// Punctuation flushes any held chunk, so each sector's data chunk must
	// still precede its own end-of-sector marker.
	seen := map[geom.Timestamp]bool{}
	for _, c := range got {
		if c.IsData() {
			seen[c.T] = true
		} else if !seen[c.T] {
			t.Fatalf("sector %d punctuation before its data", c.T)
		}
	}
}

func TestCloseAfterEndsStreamEarly(t *testing.T) {
	lat := testLat(t)
	got, _, err := runWrapped(t, feed(t, lat, 20), Policy{CloseAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := kinds(got)
	if data != 5 {
		t.Fatalf("close-early delivered %d data chunks, want 5", data)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	lat := testLat(t)
	got, f, err := runWrapped(t, feed(t, lat, 100), Policy{Seed: 9, Duplicate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := kinds(got)
	if f.Duplicated.Load() == 0 {
		t.Fatal("no duplicates at rate 0.3")
	}
	if int64(data) != 100+f.Duplicated.Load() {
		t.Fatalf("delivered %d data chunks, want 100+%d", data, f.Duplicated.Load())
	}
}

func TestPanicAfterIsRecoveredByGroup(t *testing.T) {
	lat := testLat(t)
	g := stream.NewGroup(context.Background())
	out := Wrap(g, stream.FromChunks(g, testInfo(lat), feed(t, lat, 20)), Policy{PanicAfter: 3})
	if _, err := stream.Collect(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if !stream.IsPanic(err) {
			t.Fatalf("Wait = %v, want recovered panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected panic did not unwind the group")
	}
}

func TestStallDelaysDelivery(t *testing.T) {
	lat := testLat(t)
	start := time.Now()
	_, f, err := runWrapped(t, feed(t, lat, 4), Policy{StallEvery: 2, Stall: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stalled.Load() != 2 {
		t.Fatalf("stalled %d times, want 2", f.Stalled.Load())
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("stalls did not delay the stream")
	}
}
