package faults

import (
	"io"
	"math/rand"
	"sync/atomic"
)

// Byte-level fault injectors for the wire layer: where the chunk-level
// Injector models a lossy transport above the codec, these corrupt the
// byte stream below it, exercising the GSP reader's CRC rejection and
// resynchronization. Deterministic from their seed, like everything in
// this package.

// ByteMangler wraps a reader and flips bits in the bytes passing
// through, each byte independently with probability FlipProb.
type ByteMangler struct {
	r   io.Reader
	rng *rand.Rand
	// FlipProb is the per-byte probability of XOR-ing in one random bit.
	FlipProb float64
	// Flipped counts corrupted bytes.
	Flipped atomic.Int64
}

// NewByteMangler builds a mangler over r; prob is the per-byte
// corruption probability.
func NewByteMangler(r io.Reader, seed int64, prob float64) *ByteMangler {
	return &ByteMangler{r: r, rng: rand.New(rand.NewSource(seed)), FlipProb: prob}
}

// Read reads from the wrapped reader and corrupts the result in place.
func (m *ByteMangler) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	for i := 0; i < n; i++ {
		if m.rng.Float64() < m.FlipProb {
			p[i] ^= 1 << uint(m.rng.Intn(8))
			m.Flipped.Add(1)
		}
	}
	return n, err
}

// CutWriter wraps a writer and cuts the connection mid-write after N
// bytes: everything up to the cut is written through, the rest of that
// write and every later write fail with the given error — a partial
// frame on the wire, as a TCP reset mid-send would leave it.
type CutWriter struct {
	w         io.Writer
	remain    int
	err       error
	cut       bool
	Written   atomic.Int64
	Truncated atomic.Int64
}

// NewCutWriter builds a writer that fails with err after passing
// through cutAfter bytes.
func NewCutWriter(w io.Writer, cutAfter int, err error) *CutWriter {
	if err == nil {
		err = io.ErrClosedPipe
	}
	return &CutWriter{w: w, remain: cutAfter, err: err}
}

// Cut reports whether the cut has happened.
func (c *CutWriter) Cut() bool { return c.cut }

func (c *CutWriter) Write(p []byte) (int, error) {
	if c.cut {
		return 0, c.err
	}
	if len(p) <= c.remain {
		n, err := c.w.Write(p)
		c.remain -= n
		c.Written.Add(int64(n))
		return n, err
	}
	// The cut lands inside this write: emit the prefix, then fail.
	n, _ := c.w.Write(p[:c.remain])
	c.Written.Add(int64(n))
	c.Truncated.Add(int64(len(p) - n))
	c.cut = true
	return n, c.err
}
