// Package faults injects deterministic, seeded faults into a stream: chunk
// drop, stall, duplication, adjacent reordering, early close, and panic.
// It is the chaos-engineering companion of the DSMS robustness layer — the
// same wrapper drives the -race chaos tests and the geobench E-F1
// degradation experiment, so a failure seen in CI replays bit-identically
// from its seed.
//
// Faults apply to data chunks only: end-of-sector punctuation always
// passes through (in arrival order), because downstream operators need it
// to flush state — exactly the guarantee the hub's shedding path gives.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"geostreams/internal/stream"
)

// Policy describes which faults to inject and how often. All probabilities
// are per data chunk in [0, 1]; zero values disable the corresponding
// fault, so Policy{} is a transparent pass-through.
type Policy struct {
	// Seed makes the fault sequence deterministic and replayable.
	Seed int64
	// Drop is the probability of silently discarding a data chunk
	// (simulated uplink loss).
	Drop float64
	// Duplicate is the probability of delivering a data chunk twice
	// (at-least-once transport).
	Duplicate float64
	// Reorder is the probability of holding a data chunk back and emitting
	// it after its successor (adjacent swap — bounded disorder).
	Reorder float64
	// StallEvery stalls the stream for Stall on every Nth data chunk
	// (0 = never): a bursty, jittery link.
	StallEvery int
	Stall      time.Duration
	// CloseAfter ends the stream early after N data chunks (0 = never):
	// a source drop. The wrapper keeps draining its input so the upstream
	// producer is not wedged mid-send.
	CloseAfter int
	// PanicAfter panics the wrapper goroutine after N data chunks
	// (0 = never) — the fault the stream.Group panic isolation exists for.
	PanicAfter int
}

// Injector applies a Policy and counts what it did.
type Injector struct {
	Policy Policy

	Passed     atomic.Int64
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	Stalled    atomic.Int64
}

// New builds an Injector for the policy.
func New(p Policy) *Injector { return &Injector{Policy: p} }

// Wrap is shorthand for New(p).Wrap(g, in) when the counters are not
// needed.
func Wrap(g *stream.Group, in *stream.Stream, p Policy) *stream.Stream {
	return New(p).Wrap(g, in)
}

// Wrap interposes the injector between in and the returned stream. The
// fault goroutine runs inside g, so an injected panic is recovered by the
// group exactly as an operator panic would be.
func (f *Injector) Wrap(g *stream.Group, in *stream.Stream) *stream.Stream {
	out := make(chan *stream.Chunk, stream.DefaultBuffer)
	inC := in.C
	g.Go(func(ctx context.Context) error {
		defer close(out)
		return f.run(ctx, inC, out)
	})
	return &stream.Stream{Info: in.Info, C: out}
}

func (f *Injector) run(ctx context.Context, in <-chan *stream.Chunk, out chan<- *stream.Chunk) error {
	p := f.Policy
	rng := rand.New(rand.NewSource(p.Seed))
	send := func(c *stream.Chunk) bool {
		select {
		case out <- c:
			return true
		case <-ctx.Done():
			return false
		}
	}
	var held *stream.Chunk // data chunk delayed by a reorder fault
	data := 0              // data chunks consumed so far
	for {
		select {
		case c, ok := <-in:
			if !ok {
				if held != nil {
					send(held)
				}
				return nil
			}
			if !c.IsData() {
				// Punctuation: release any held chunk first so it stays
				// inside its sector, then pass the punctuation through.
				if held != nil {
					if !send(held) {
						return nil
					}
					held = nil
				}
				if !send(c) {
					return nil
				}
				continue
			}
			data++
			if p.PanicAfter > 0 && data > p.PanicAfter {
				panic(fmt.Sprintf("faults: injected panic after %d data chunks", data-1))
			}
			if p.CloseAfter > 0 && data > p.CloseAfter {
				// Early close: stop emitting but keep draining the input so
				// the upstream producer can finish its sends and exit.
				drain(ctx, in)
				return nil
			}
			if p.StallEvery > 0 && data%p.StallEvery == 0 && p.Stall > 0 {
				f.Stalled.Add(1)
				select {
				case <-time.After(p.Stall):
				case <-ctx.Done():
					return nil
				}
			}
			if p.Drop > 0 && rng.Float64() < p.Drop {
				f.Dropped.Add(1)
				continue
			}
			if held == nil && p.Reorder > 0 && rng.Float64() < p.Reorder {
				f.Reordered.Add(1)
				held = c
				continue
			}
			if !send(c) {
				return nil
			}
			f.Passed.Add(1)
			if p.Duplicate > 0 && rng.Float64() < p.Duplicate {
				f.Duplicated.Add(1)
				if !send(c) {
					return nil
				}
			}
			if held != nil {
				if !send(held) {
					return nil
				}
				f.Passed.Add(1)
				held = nil
			}
		case <-ctx.Done():
			return nil
		}
	}
}

func drain(ctx context.Context, in <-chan *stream.Chunk) {
	for {
		select {
		case _, ok := <-in:
			if !ok {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
