package stream

import (
	"context"
	"sync"
)

// Group runs the goroutines of one query pipeline and collects the first
// error. It is a minimal stdlib-only analogue of errgroup.Group: the first
// failing stage cancels the group context, unwinding every other stage.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

// NewGroup derives a group from a parent context.
func NewGroup(parent context.Context) *Group {
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}
}

// Context returns the group's context; stages must watch it.
func (g *Group) Context() context.Context { return g.ctx }

// Go runs fn in a goroutine. A non-nil return becomes the group error
// (first wins) and cancels the group.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil && err != context.Canceled {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every stage has returned, cancels the context, and
// returns the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// Err returns the first error recorded so far without waiting.
func (g *Group) Err() error { return g.err }
