package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a panic recovered from a pipeline stage, converted into the
// group's terminal error so one misbehaving operator cannot take down the
// process. Value is the recovered panic value; Stack is the goroutine stack
// at the panic site, captured for the query's error report.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("stream: operator panic: %v", p.Value)
}

// IsPanic reports whether err carries a recovered operator panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// isCancellation reports whether err is (or wraps) a context cancellation
// or deadline: pipeline stages returning these are unwinding cooperatively,
// not failing, so they must not become the group error. Operators wrap
// errors with fmt.Errorf("%s: %w", ...) in Apply/Apply2, hence errors.Is
// rather than equality.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Group runs the goroutines of one query pipeline and collects the first
// error. It is a minimal stdlib-only analogue of errgroup.Group: the first
// failing stage cancels the group context, unwinding every other stage.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	mu     sync.Mutex
	err    error
}

// NewGroup derives a group from a parent context.
func NewGroup(parent context.Context) *Group {
	ctx, cancel := context.WithCancel(parent)
	return &Group{ctx: ctx, cancel: cancel}
}

// Context returns the group's context; stages must watch it.
func (g *Group) Context() context.Context { return g.ctx }

// Go runs fn in a goroutine. A non-nil return becomes the group error
// (first wins) and cancels the group. A panic inside fn is recovered into a
// *PanicError carrying the stack: the group fails like any other stage
// error, but the process — and every other group — keeps running.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		var err error
		func() {
			defer func() {
				if v := recover(); v != nil {
					err = &PanicError{Value: v, Stack: debug.Stack()}
				}
			}()
			err = fn(g.ctx)
		}()
		if err != nil && !isCancellation(err) {
			g.once.Do(func() {
				g.mu.Lock()
				g.err = err
				g.mu.Unlock()
				g.cancel()
			})
		}
	}()
}

// Cancel unwinds the group's context without recording an error: stages
// return cooperative cancellation errors, which never become the group
// error. It detaches a pipeline whose input cannot be closed from outside —
// a shared-trunk tap stays open for the trunk's other subscribers, so the
// reader must be told to stop instead.
func (g *Group) Cancel() { g.cancel() }

// Wait blocks until every stage has returned, cancels the context, and
// returns the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.Err()
}

// Err returns the first error recorded so far without waiting.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
