package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Panic isolation: a panicking stage becomes the group's terminal
// *PanicError instead of killing the process, and unwinds its siblings.

func TestGroupRecoversPanicIntoError(t *testing.T) {
	g := NewGroup(context.Background())
	g.Go(func(ctx context.Context) error {
		panic("boom at sector 7")
	})
	err := g.Wait()
	if err == nil {
		t.Fatal("panic must become the group error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v (%T), want *PanicError", err, err)
	}
	if !IsPanic(err) {
		t.Fatal("IsPanic must recognize the recovered panic")
	}
	if fmt.Sprint(pe.Value) != "boom at sector 7" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom at sector 7") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestGroupPanicCancelsSiblings(t *testing.T) {
	g := NewGroup(context.Background())
	g.Go(func(ctx context.Context) error {
		<-ctx.Done() // healthy stage waiting for work
		return nil
	})
	g.Go(func(ctx context.Context) error {
		panic(errors.New("typed panic value"))
	})
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if !IsPanic(err) {
			t.Fatalf("Wait = %v, want panic error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panic did not cancel the sibling stage")
	}
}

// Regression (wrapped cancellations): Apply/Apply2 wrap operator errors
// with fmt.Errorf("%s: %w", ...), so a stage returning a wrapped
// context.Canceled used to be recorded as the group error and deregistered
// queries reported a spurious failure. errors.Is must see through the
// wrapping for both Canceled and DeadlineExceeded.
func TestGroupIgnoresWrappedCancellation(t *testing.T) {
	for _, base := range []error{context.Canceled, context.DeadlineExceeded} {
		g := NewGroup(context.Background())
		g.Go(func(ctx context.Context) error {
			return fmt.Errorf("rselect: %w", base)
		})
		if err := g.Wait(); err != nil {
			t.Fatalf("wrapped %v became group error: %v", base, err)
		}
	}
}

func TestApplyWrappedCancellationNotAGroupError(t *testing.T) {
	// The end-to-end form of the same bug: cancel the group while an
	// operator is mid-Send; the operator returns ctx.Err(), Apply wraps it,
	// and the group must still report success.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	lat := failureLattice(t)
	src := slowSource(g, testInfo(), lat)
	out, _, err := Apply(g, doubler{}, src)
	if err != nil {
		t.Fatal(err)
	}
	<-out.C
	cancel()
	if err := g.Wait(); err != nil {
		t.Fatalf("cancellation surfaced as failure: %v", err)
	}
}
