package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"geostreams/internal/obs/trace"
)

// TapSet interposes on a stream for push delivery: the primary consumer
// (the DSMS delivery stage) sees every chunk with unchanged blocking
// semantics, while wire subscribers attach credit-bounded taps that are
// strictly best-effort — a tap with exhausted credit or a full buffer
// drops the chunk (and counts it) instead of blocking the pipeline. This
// is the egress mirror of the hub's slow-consumer shedding: one stalled
// network client can never stall the hub or the delivery stage.
//
// Credit accounting: each data chunk enqueued to a tap consumes one unit
// of the credit its consumer granted; punctuation rides free (downstream
// assembly needs sector boundaries) and has reserved buffer headroom
// beyond the data window, so a credit-exhausted or full subscriber still
// receives sector boundaries — only a consumer stalled long enough to
// back up the whole punctuation reserve can miss one. Taps attach and
// detach while the stream flows; when the input closes, every tap's
// channel closes after the queued chunks drain.
type TapSet struct {
	mu     sync.Mutex
	taps   []*CreditTap
	closed bool

	// Cumulative across attached and since-detached taps, for /stats and
	// /metrics: taps ever attached, chunks enqueued, and data chunks
	// dropped on exhausted credit or a full tap buffer.
	attached  atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64

	// tracer records a "fanout" span per traced chunk offered to the taps
	// (attach-once; see Stats.AttachTrace for the rationale).
	tracer atomic.Pointer[trace.Recorder]
}

// punctuationReserve is the buffer headroom each tap keeps beyond its
// data window, reserved for punctuation: data chunks never occupy these
// slots, so sector boundaries reach a backed-up subscriber unless its
// consumer has stalled through the entire reserve.
const punctuationReserve = 16

// CreditTap is one credit-bounded reader of a TapSet.
type CreditTap struct {
	ts     *TapSet
	c      chan *Chunk
	window int // data-chunk budget; c's capacity adds punctuationReserve
	credit atomic.Int64

	delivered atomic.Int64
	dropped   atomic.Int64

	detached bool // guarded by ts.mu; closed channel must not be sent to
	once     sync.Once
}

// NewTapSet wires the tap adapter onto in inside the group, returning the
// primary pass-through stream and the tap set.
func NewTapSet(g *Group, in *Stream) (*Stream, *TapSet) {
	ts := &TapSet{}
	out := make(chan *Chunk, DefaultBuffer)
	inC := in.C
	g.Go(func(ctx context.Context) error {
		defer ts.finish()
		defer close(out)
		defer DrainReleasing(inC)
		for {
			select {
			case c, ok := <-inC:
				if !ok {
					return nil
				}
				ts.offer(c)
				if err := Send(ctx, out, c); err != nil {
					c.Release()
					return nil
				}
			case <-ctx.Done():
				return nil
			}
		}
	})
	return &Stream{Info: in.Info, C: out}, ts
}

// AttachTrace wires a span recorder into the tap set, once; later calls
// are no-ops.
func (ts *TapSet) AttachTrace(r *trace.Recorder) {
	if r == nil {
		return
	}
	ts.tracer.CompareAndSwap(nil, r)
}

// Attach adds a tap whose buffer holds at most window chunks. If the
// stream has already ended the returned tap's channel is closed
// immediately, so the subscriber sees a normal end of stream.
func (ts *TapSet) Attach(window int) *CreditTap {
	if window < 1 {
		window = 1
	}
	t := &CreditTap{ts: ts, c: make(chan *Chunk, window+punctuationReserve), window: window}
	ts.mu.Lock()
	if ts.closed {
		ts.mu.Unlock()
		close(t.c)
		return t
	}
	ts.taps = append(ts.taps, t)
	ts.mu.Unlock()
	ts.attached.Add(1)
	return t
}

// Stats reports the tap set's cumulative counters: taps ever attached,
// taps currently attached, chunks enqueued, and data chunks dropped for
// exhausted credit or a full tap buffer.
func (ts *TapSet) Stats() (attached int64, active int, delivered, dropped int64) {
	ts.mu.Lock()
	active = len(ts.taps)
	ts.mu.Unlock()
	return ts.attached.Load(), active, ts.delivered.Load(), ts.dropped.Load()
}

// offer enqueues c to every attached tap without ever blocking: a data
// chunk needs one unit of credit and a slot within the tap's data
// window, punctuation needs any slot — including the reserve the data
// window cannot reach. The set lock is held across the (non-blocking)
// sends so a concurrent Close cannot close a channel mid-send.
func (ts *TapSet) offer(c *Chunk) {
	// Trace fields are captured before any enqueue: a tap's consumer may
	// release its reference as soon as it receives the chunk, and the
	// primary consumer downstream may release the last one — after which a
	// pool-backed chunk's fields are unreadable.
	var begin time.Time
	if tr, tT, punct := c.Trace, int64(c.T), !c.IsData(); tr != 0 {
		begin = time.Now()
		defer func() {
			ts.tracer.Load().Record(tr, trace.StageFanout, "tap",
				begin, time.Since(begin), tT, punct)
		}()
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.taps {
		if c.IsData() {
			// len(t.c) can only shrink concurrently (the consumer drains,
			// only this goroutine sends), so the window check errs toward
			// dropping — data never eats into the punctuation reserve.
			if t.credit.Load() <= 0 || len(t.c) >= t.window {
				t.dropped.Add(1)
				ts.dropped.Add(1)
				continue
			}
			// The tap consumer gets its own reference; taken before the
			// enqueue and returned if the buffer turns out to be full.
			c.Retain()
			select {
			case t.c <- c:
				t.credit.Add(-1)
				t.delivered.Add(1)
				ts.delivered.Add(1)
			default:
				c.Release()
				t.dropped.Add(1)
				ts.dropped.Add(1)
			}
			continue
		}
		c.Retain()
		select {
		case t.c <- c:
			t.delivered.Add(1)
			ts.delivered.Add(1)
		default:
			// Only reachable when the consumer stalled through the whole
			// punctuation reserve on top of its data window.
			c.Release()
			t.dropped.Add(1)
			ts.dropped.Add(1)
		}
	}
}

// finish closes every still-attached tap's channel; queued chunks remain
// readable until drained. Which side closes a tap's channel (finish or
// Close) is decided under the set lock via the detached flag, so the two
// can race safely.
func (ts *TapSet) finish() {
	ts.mu.Lock()
	var toClose []*CreditTap
	for _, t := range ts.taps {
		if !t.detached {
			t.detached = true
			toClose = append(toClose, t)
		}
	}
	ts.taps = nil
	ts.closed = true
	ts.mu.Unlock()
	for _, t := range toClose {
		close(t.c)
	}
}

// C returns the tap's receive channel; it closes when the stream ends or
// the tap is detached.
func (t *CreditTap) C() <-chan *Chunk { return t.c }

// Grant extends the tap's credit by n data chunks.
func (t *CreditTap) Grant(n int) {
	if n > 0 {
		t.credit.Add(int64(n))
	}
}

// Credit returns the currently unconsumed credit.
func (t *CreditTap) Credit() int64 { return t.credit.Load() }

// Delivered returns how many chunks were enqueued to this tap.
func (t *CreditTap) Delivered() int64 { return t.delivered.Load() }

// Dropped returns how many data chunks were dropped for exhausted credit
// or a full buffer.
func (t *CreditTap) Dropped() int64 { return t.dropped.Load() }

// Close detaches the tap and closes its channel. Idempotent; safe to
// race with the forwarder (the set lock orders detach against offers)
// and with the stream ending.
func (t *CreditTap) Close() {
	t.once.Do(func() {
		t.ts.mu.Lock()
		shouldClose := !t.detached
		t.detached = true
		for i, x := range t.ts.taps {
			if x == t {
				t.ts.taps = append(t.ts.taps[:i], t.ts.taps[i+1:]...)
				break
			}
		}
		t.ts.mu.Unlock()
		if shouldClose {
			close(t.c)
			// The closing side is the consumer (the egress loop defers
			// Close after it stops reading), so draining here races with
			// nobody: queued chunks the subscriber never consumed go back
			// to the pool instead of leaking out of it.
			for c := range t.c {
				c.Release()
			}
		}
	})
}
