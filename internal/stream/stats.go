package stream

import (
	"fmt"
	"sync/atomic"
	"time"

	"geostreams/internal/obs"
	"geostreams/internal/obs/trace"
)

// Stats instruments one operator instance. The experiment harness reads
// these counters to verify the paper's space-complexity claims directly:
// the §3.1 claim that restrictions buffer nothing, the §3.2 claim that a
// stretch buffers one frame, the §3.3 claim that composition buffering is
// one image vs. one row depending on organization, and so on.
//
// Beyond the space counters, Stats carries the runtime telemetry exported
// at GET /metrics: per-chunk processing-latency and chunk-age histograms,
// wall-time busy/idle accounting, and queue-depth tracking for the
// operator's output channel. The histogram fields are nil on a zero-value
// Stats (and recording into them is a no-op); Apply/Apply2 allocate them
// via NewStats.
//
// All counters are safe for concurrent use.
type Stats struct {
	Name string

	ChunksIn  atomic.Int64
	ChunksOut atomic.Int64
	PointsIn  atomic.Int64
	PointsOut atomic.Int64

	// bufferedPoints is the operator's current intermediate state in
	// points; peakBuffered is its high-water mark.
	bufferedPoints atomic.Int64
	peakBuffered   atomic.Int64

	// MatchedSectors / UnmatchedSectors count composition pairing outcomes.
	MatchedSectors   atomic.Int64
	UnmatchedSectors atomic.Int64

	// Latency observes, at each CountOut, the seconds since the most
	// recent input chunk arrived — per-chunk processing latency for 1:1
	// operators, batch flush latency for buffering ones.
	Latency *obs.Histogram
	// ChunkAge observes, at each CountIn, the seconds since the arriving
	// chunk's data was ingested at the instrument (data freshness as seen
	// by this stage). Chunks without an ingest stamp are skipped.
	ChunkAge *obs.Histogram

	// Busy/idle wall-time split: the gap before a CountIn is idle time
	// (waiting for input), the gap before a CountOut is busy time
	// (computing, including any send backpressure).
	busyNanos atomic.Int64
	idleNanos atomic.Int64
	lastEvent atomic.Int64 // unix nanos of the last CountIn/CountOut
	lastIn    atomic.Int64 // unix nanos of the most recent CountIn

	// queue is the operator's output channel, sampled for depth; set by
	// Apply/Apply2 before the operator goroutine starts.
	queue     chan *Chunk
	peakQueue atomic.Int64

	// tracer records an "operator" span at each CountOut of a traced
	// chunk. It is attach-once (AttachTrace) and loaded atomically because
	// operators may already be emitting when the DSMS wires tracing up.
	tracer atomic.Pointer[trace.Recorder]
}

// NewStats builds a fully instrumented Stats (latency and chunk-age
// histograms allocated). Zero-value Stats remain valid for tests; only the
// histogram observations are skipped.
func NewStats(name string) *Stats {
	return &Stats{
		Name:     name,
		Latency:  obs.NewDurationHistogram(),
		ChunkAge: obs.NewDurationHistogram(),
	}
}

// markRunning starts the busy/idle clock; Apply/Apply2 call it when the
// operator goroutine launches so startup lag counts as idle, not busy.
func (s *Stats) markRunning() {
	s.lastEvent.CompareAndSwap(0, time.Now().UnixNano())
}

// watchQueue attaches the operator's output channel for depth sampling.
// Must be called before the operator goroutine starts sending.
func (s *Stats) watchQueue(ch chan *Chunk) { s.queue = ch }

// CountIn records an arriving chunk.
func (s *Stats) CountIn(c *Chunk) {
	s.ChunksIn.Add(1)
	s.PointsIn.Add(int64(c.NumPoints()))
	now := time.Now().UnixNano()
	if last := s.lastEvent.Swap(now); last != 0 {
		s.idleNanos.Add(now - last)
	}
	s.lastIn.Store(now)
	if ing := c.Ingest; ing != 0 && s.ChunkAge != nil {
		s.ChunkAge.Observe(float64(now-ing) / 1e9)
	}
}

// CountOut records an emitted chunk. Callers invoke it after the chunk is
// already sent downstream, so it must not touch the chunk's payload —
// reads only.
func (s *Stats) CountOut(c *Chunk) {
	s.ChunksOut.Add(1)
	s.PointsOut.Add(int64(c.NumPoints()))
	now := time.Now().UnixNano()
	if last := s.lastEvent.Swap(now); last != 0 {
		s.busyNanos.Add(now - last)
	}
	if in := s.lastIn.Load(); in != 0 {
		if s.Latency != nil {
			s.Latency.Observe(float64(now-in) / 1e9)
		}
		if c.Trace != 0 {
			s.tracer.Load().Record(c.Trace, trace.StageOperator, s.Name,
				time.Unix(0, in), time.Duration(now-in), int64(c.T), !c.IsData())
		}
	}
	if s.queue != nil {
		depth := int64(len(s.queue))
		for {
			peak := s.peakQueue.Load()
			if depth <= peak || s.peakQueue.CompareAndSwap(peak, depth) {
				break
			}
		}
	}
}

// AttachTrace wires a span recorder into the operator, once: the first
// recorder attached wins and later calls are no-ops. Shared-trunk
// operators are claimed by the shared recorder at trunk build time; a
// query's private operators are claimed by its own recorder at
// registration — the once semantics keep a reused trunk's spans in the
// shared ring instead of whichever query registered last.
func (s *Stats) AttachTrace(r *trace.Recorder) {
	if r == nil {
		return
	}
	s.tracer.CompareAndSwap(nil, r)
}

// Buffer records n points entering the operator's intermediate state and
// updates the high-water mark.
func (s *Stats) Buffer(n int64) {
	cur := s.bufferedPoints.Add(n)
	for {
		peak := s.peakBuffered.Load()
		if cur <= peak || s.peakBuffered.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Unbuffer records n points leaving the intermediate state.
func (s *Stats) Unbuffer(n int64) { s.bufferedPoints.Add(-n) }

// PeakBufferedPoints returns the high-water mark of buffered points — the
// measured space complexity of the operator.
func (s *Stats) PeakBufferedPoints() int64 { return s.peakBuffered.Load() }

// BufferedPoints returns the currently buffered point count.
func (s *Stats) BufferedPoints() int64 { return s.bufferedPoints.Load() }

// BusyTime returns accumulated wall time attributed to processing
// (including downstream send backpressure).
func (s *Stats) BusyTime() time.Duration { return time.Duration(s.busyNanos.Load()) }

// IdleTime returns accumulated wall time spent waiting for input.
func (s *Stats) IdleTime() time.Duration { return time.Duration(s.idleNanos.Load()) }

// QueueDepth returns the current depth of the operator's output channel
// (0 when unattached).
func (s *Stats) QueueDepth() int {
	if s.queue == nil {
		return 0
	}
	return len(s.queue)
}

// QueueCap returns the capacity of the operator's output channel.
func (s *Stats) QueueCap() int {
	if s.queue == nil {
		return 0
	}
	return cap(s.queue)
}

// PeakQueueDepth returns the high-water mark of the output channel depth
// as sampled at each emission.
func (s *Stats) PeakQueueDepth() int64 { return s.peakQueue.Load() }

// LatencySnapshot captures the processing-latency histogram (empty when
// uninstrumented).
func (s *Stats) LatencySnapshot() obs.HistogramSnapshot { return s.Latency.Snapshot() }

// AgeSnapshot captures the chunk-age histogram (empty when uninstrumented).
func (s *Stats) AgeSnapshot() obs.HistogramSnapshot { return s.ChunkAge.Snapshot() }

func (s *Stats) String() string {
	return fmt.Sprintf("%s{in: %d chunks/%d pts, out: %d chunks/%d pts, peak buffer: %d pts, sectors: %d matched/%d unmatched}",
		s.Name, s.ChunksIn.Load(), s.PointsIn.Load(),
		s.ChunksOut.Load(), s.PointsOut.Load(), s.PeakBufferedPoints(),
		s.MatchedSectors.Load(), s.UnmatchedSectors.Load())
}
