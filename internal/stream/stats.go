package stream

import (
	"fmt"
	"sync/atomic"
)

// Stats instruments one operator instance. The experiment harness reads
// these counters to verify the paper's space-complexity claims directly:
// the §3.1 claim that restrictions buffer nothing, the §3.2 claim that a
// stretch buffers one frame, the §3.3 claim that composition buffering is
// one image vs. one row depending on organization, and so on.
//
// All counters are safe for concurrent use.
type Stats struct {
	Name string

	ChunksIn  atomic.Int64
	ChunksOut atomic.Int64
	PointsIn  atomic.Int64
	PointsOut atomic.Int64

	// bufferedPoints is the operator's current intermediate state in
	// points; peakBuffered is its high-water mark.
	bufferedPoints atomic.Int64
	peakBuffered   atomic.Int64

	// MatchedSectors / UnmatchedSectors count composition pairing outcomes.
	MatchedSectors   atomic.Int64
	UnmatchedSectors atomic.Int64
}

// CountIn records an arriving chunk.
func (s *Stats) CountIn(c *Chunk) {
	s.ChunksIn.Add(1)
	s.PointsIn.Add(int64(c.NumPoints()))
}

// CountOut records an emitted chunk.
func (s *Stats) CountOut(c *Chunk) {
	s.ChunksOut.Add(1)
	s.PointsOut.Add(int64(c.NumPoints()))
}

// Buffer records n points entering the operator's intermediate state and
// updates the high-water mark.
func (s *Stats) Buffer(n int64) {
	cur := s.bufferedPoints.Add(n)
	for {
		peak := s.peakBuffered.Load()
		if cur <= peak || s.peakBuffered.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Unbuffer records n points leaving the intermediate state.
func (s *Stats) Unbuffer(n int64) { s.bufferedPoints.Add(-n) }

// PeakBufferedPoints returns the high-water mark of buffered points — the
// measured space complexity of the operator.
func (s *Stats) PeakBufferedPoints() int64 { return s.peakBuffered.Load() }

// BufferedPoints returns the currently buffered point count.
func (s *Stats) BufferedPoints() int64 { return s.bufferedPoints.Load() }

func (s *Stats) String() string {
	return fmt.Sprintf("%s{in: %d chunks/%d pts, out: %d chunks/%d pts, peak buffer: %d pts}",
		s.Name, s.ChunksIn.Load(), s.PointsIn.Load(),
		s.ChunksOut.Load(), s.PointsOut.Load(), s.PeakBufferedPoints())
}
