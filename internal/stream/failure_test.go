package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"geostreams/internal/geom"
)

// Failure-injection coverage: the pipeline plumbing must unwind cleanly —
// no goroutine leaks, no hangs — whatever stage fails, wherever the
// cancellation comes from.

// faultyOp fails after passing through a configurable number of chunks.
type faultyOp struct {
	after int
}

func (f *faultyOp) Name() string                  { return "faulty" }
func (f *faultyOp) OutInfo(in Info) (Info, error) { return in, nil }
func (f *faultyOp) Run(ctx context.Context, in <-chan *Chunk, out chan<- *Chunk, st *Stats) error {
	n := 0
	for c := range in {
		if n >= f.after {
			return fmt.Errorf("injected failure after %d chunks", n)
		}
		n++
		if err := Send(ctx, out, c); err != nil {
			return err
		}
	}
	return nil
}

// slowSource emits chunks forever until cancelled.
func slowSource(g *Group, info Info, lat geom.Lattice) *Stream {
	return Generate(g, info, func(ctx context.Context, emit func(*Chunk) bool) error {
		for i := geom.Timestamp(0); ; i++ {
			c, err := NewGridChunk(i, lat, make([]float64, lat.NumPoints()))
			if err != nil {
				return err
			}
			if !emit(c) {
				return nil
			}
		}
	})
}

func failureLattice(t *testing.T) geom.Lattice {
	t.Helper()
	lat, err := geom.NewLattice(0, 0, 1, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestMidPipelineFailureUnwindsEverything(t *testing.T) {
	g := NewGroup(context.Background())
	lat := failureLattice(t)
	src := slowSource(g, testInfo(), lat)
	mid, _, err := Apply(g, &faultyOp{after: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy downstream stage.
	down, _, err := Apply(g, doubler{}, mid)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range down.C { //nolint:revive
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("downstream did not unwind after injected failure")
	}
	err = g.Wait()
	if err == nil || !errorsContain(err, "injected failure") {
		t.Fatalf("Wait = %v, want injected failure", err)
	}
}

func errorsContain(err error, substr string) bool {
	return err != nil && (len(err.Error()) >= len(substr)) &&
		(func() bool { return contains(err.Error(), substr) })()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestParentCancellationUnwindsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	lat := failureLattice(t)
	src := slowSource(g, testInfo(), lat)
	out, _, err := Apply(g, doubler{}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Consume a few chunks, then cancel from outside.
	for i := 0; i < 3; i++ {
		<-out.C
	}
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait after cancel = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not unwind on parent cancellation")
	}
}

func TestAbandonedConsumerDoesNotBlockGroupForever(t *testing.T) {
	// A consumer that stops reading: the stages block on Send until the
	// group is cancelled; Wait with a cancelled parent must return.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	lat := failureLattice(t)
	src := slowSource(g, testInfo(), lat)
	out, _, err := Apply(g, doubler{}, src)
	if err != nil {
		t.Fatal(err)
	}
	<-out.C // read one chunk, then walk away
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("group hung with abandoned consumer")
	}
}

func TestBinaryOperatorFailurePropagation(t *testing.T) {
	g := NewGroup(context.Background())
	lat := failureLattice(t)
	a := slowSource(g, testInfo(), lat)
	b := slowSource(g, testInfo(), lat)
	out, _, err := Apply2(g, failingBinary{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for range out.C { //nolint:revive
	}
	if err := g.Wait(); err == nil || !contains(err.Error(), "binary boom") {
		t.Fatalf("Wait = %v", err)
	}
}

type failingBinary struct{}

func (failingBinary) Name() string                    { return "failbin" }
func (failingBinary) OutInfo(a, b Info) (Info, error) { return a, nil }
func (failingBinary) Run(ctx context.Context, a, b <-chan *Chunk, out chan<- *Chunk, st *Stats) error {
	select {
	case <-a:
	case <-b:
	}
	return errors.New("binary boom")
}

func TestTeeUnwindsWhenOneConsumerAbandons(t *testing.T) {
	// Tee is synchronous: if one consumer walks away, the other stalls
	// until cancellation. The group must still unwind.
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	lat := failureLattice(t)
	src := slowSource(g, testInfo(), lat)
	outs := Tee(g, src, 2)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Consumer 0 reads two chunks then abandons.
		<-outs[0].C
		<-outs[0].C
	}()
	// Consumer 1 drains until close.
	go func() {
		for range outs[1].C { //nolint:revive
		}
	}()
	wg.Wait()
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tee group hung after consumer abandoned")
	}
}

func TestGroupManyFailuresFirstWins(t *testing.T) {
	g := NewGroup(context.Background())
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func(ctx context.Context) error {
			return fmt.Errorf("failure %d", i)
		})
	}
	err := g.Wait()
	if err == nil || !contains(err.Error(), "failure") {
		t.Fatalf("Wait = %v", err)
	}
}
