package stream

import (
	"context"
	"testing"
	"time"

	"geostreams/internal/geom"
)

func fanGrid(t *testing.T, ts int) *Chunk {
	t.Helper()
	lat := testLattice(t, 4, 1)
	vals := make([]float64, 4)
	for i := range vals {
		vals[i] = float64(ts*10 + i)
	}
	c, err := NewGridChunk(geom.Timestamp(ts), lat, vals)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fanoutChunks(t *testing.T, n int) []*Chunk {
	t.Helper()
	out := make([]*Chunk, 0, n+1)
	for i := 0; i < n; i++ {
		out = append(out, fanGrid(t, i))
	}
	out = append(out, NewEndOfSector(0, testLattice(t, 4, 1)))
	return out
}

func TestFanoutBroadcastsToAllTaps(t *testing.T) {
	g := NewGroup(context.Background())
	chunks := fanoutChunks(t, 8)
	f := NewFanout(g, FromChunks(g, testInfo(), chunks))
	t1 := f.AddTap()
	t2 := f.AddTap()

	got1c := make(chan []*Chunk, 1)
	go func() {
		got, _ := Collect(context.Background(), t1.Stream())
		got1c <- got
	}()
	got2, err := Collect(context.Background(), t2.Stream())
	if err != nil {
		t.Fatal(err)
	}
	got1 := <-got1c
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got1) != len(chunks) || len(got2) != len(chunks) {
		t.Fatalf("taps saw %d and %d chunks, want %d", len(got1), len(got2), len(chunks))
	}
	for i := range chunks {
		if got1[i] != chunks[i] || got2[i] != chunks[i] {
			t.Fatalf("chunk %d: taps did not receive the shared chunk pointer", i)
		}
	}
	if f.Delivered() != int64(2*len(chunks)) {
		t.Fatalf("Delivered() = %d, want %d", f.Delivered(), 2*len(chunks))
	}
}

func TestFanoutDetachUnblocksTrunk(t *testing.T) {
	g := NewGroup(context.Background())
	chunks := fanoutChunks(t, 64)
	f := NewFanout(g, FromChunks(g, testInfo(), chunks))
	stuck := f.AddTap() // never read: fills its buffer and blocks the trunk
	live := f.AddTap()

	done := make(chan []*Chunk, 1)
	go func() {
		got, _ := Collect(context.Background(), live.Stream())
		done <- got
	}()
	// Give the broadcaster time to wedge against the unread tap, then
	// detach it: the live tap must still receive the full stream.
	time.Sleep(20 * time.Millisecond)
	stuck.Close()
	got := <-done
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	// The live tap sees every chunk: detaching the stuck tap only skips
	// deliveries to the detached channel.
	if len(got) != len(chunks) {
		t.Fatalf("live tap saw %d chunks, want %d", len(got), len(chunks))
	}
	if n := f.TapCount(); n != 0 {
		t.Fatalf("TapCount() after finish = %d, want 0", n)
	}
}

// TestFanoutDetachReleasesBufferedChunks: a tap that detaches with
// pool-backed chunks still sitting in its buffer must not strand their
// references — the broadcaster reaps the tap on its next delivery, and the
// fanout's finish drains taps that detached after the last delivery. Either
// way PooledLive returns to its baseline.
func TestFanoutDetachReleasesBufferedChunks(t *testing.T) {
	pooled := func(ts int) *Chunk {
		lat := testLattice(t, 4, 1)
		c, err := NewPooledGridChunk(geom.Timestamp(ts), lat, []float64{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := PooledLive()
	g := NewGroup(context.Background())
	n := 2*DefaultBuffer + 8
	chunks := make([]*Chunk, 0, n)
	for i := 0; i < n; i++ {
		chunks = append(chunks, pooled(i))
	}
	f := NewFanout(g, FromChunks(g, testInfo(), chunks))
	stuck := f.AddTap() // fills its buffer, then detaches without reading
	live := f.AddTap()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range live.Stream().C {
			c.Release()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	stuck.Close()
	<-done
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}

	// A tap that detaches only after the fanout has finished: with no
	// broadcaster left, Close itself drains the buffered residue.
	g2 := NewGroup(context.Background())
	f2 := NewFanout(g2, FromChunks(g2, testInfo(), []*Chunk{pooled(100), pooled(101)}))
	lazy := f2.AddTap()
	if err := g2.Wait(); err != nil { // both chunks fit the tap buffer; stream ends
		t.Fatal(err)
	}
	lazy.Close()

	deadline := time.Now().Add(5 * time.Second)
	for PooledLive() != base {
		if time.Now().After(deadline) {
			t.Fatalf("detached tap stranded pooled chunks: live = %d, baseline = %d",
				PooledLive(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFanoutAddTapAfterEndIsClosed(t *testing.T) {
	g := NewGroup(context.Background())
	f := NewFanout(g, FromChunks(g, testInfo(), fanoutChunks(t, 1)))
	first := f.AddTap()
	if _, err := Collect(context.Background(), first.Stream()); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	late := f.AddTap()
	select {
	case _, ok := <-late.Stream().C:
		if ok {
			t.Fatal("late tap received a chunk from an ended fanout")
		}
	case <-time.After(time.Second):
		t.Fatal("late tap's stream was not closed")
	}
}

func TestFanoutCancelClosesTaps(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	// An endless source: only cancellation can end this fanout.
	src := Generate(g, testInfo(), func(ctx context.Context, emit func(*Chunk) bool) error {
		i := 0
		for {
			if !emit(fanGrid(t, i)) {
				return nil
			}
			i++
		}
	})
	f := NewFanout(g, src)
	tap := f.AddTap()
	// Read a few chunks, then cancel the group: the tap must end.
	for i := 0; i < 3; i++ {
		if _, ok := <-tap.Stream().C; !ok {
			t.Fatal("tap closed before cancellation")
		}
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-tap.Stream().C:
			if !ok {
				if err := g.Wait(); err != nil {
					t.Fatal(err)
				}
				return
			}
		case <-deadline:
			t.Fatal("tap was not closed after group cancellation")
		}
	}
}

func TestFanoutHoldsFirstChunkUntilArmed(t *testing.T) {
	g := NewGroup(context.Background())
	chunks := fanoutChunks(t, 4)
	f := NewFanout(g, FromChunks(g, testInfo(), chunks))
	// No tap yet: the broadcaster must hold, not drop. Attach after a
	// delay and verify nothing was lost.
	time.Sleep(20 * time.Millisecond)
	tap := f.AddTap()
	got, err := Collect(context.Background(), tap.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chunks) {
		t.Fatalf("first tap saw %d chunks, want %d (prefix dropped before arming?)", len(got), len(chunks))
	}
}
