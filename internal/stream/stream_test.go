package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
)

func testLattice(t *testing.T, w, h int) geom.Lattice {
	t.Helper()
	l, err := geom.NewLattice(0, float64(h-1), 1, -1, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func testInfo() Info {
	return Info{
		Band: "vis",
		CRS:  coord.LatLon{},
		Org:  RowByRow,
		VMin: 0, VMax: 1023,
	}
}

func seqVals(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestGridChunkConstruction(t *testing.T) {
	lat := testLattice(t, 4, 3)
	c, err := NewGridChunk(7, lat, seqVals(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindGrid || c.T != 7 || c.NumPoints() != 12 || !c.IsData() {
		t.Fatalf("bad grid chunk: %+v", c)
	}
	if c.Grid.At(3, 2) != 11 {
		t.Fatalf("At(3,2) = %g", c.Grid.At(3, 2))
	}
	// Value count mismatch must be rejected.
	if _, err := NewGridChunk(7, lat, seqVals(11)); err == nil {
		t.Fatal("mismatched value count must fail")
	}
}

func TestGridChunkForEachPointOrder(t *testing.T) {
	lat := testLattice(t, 3, 2) // y: 1 (row 0), 0 (row 1)
	c, err := NewGridChunk(5, lat, seqVals(6))
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	var vals []float64
	c.ForEachPoint(func(p geom.Point, v float64) {
		pts = append(pts, p)
		vals = append(vals, v)
	})
	if len(pts) != 6 {
		t.Fatalf("visited %d points", len(pts))
	}
	// Row-major: first point is (0, 1), fourth is (0, 0).
	if pts[0] != geom.Pt(0, 1, 5) || pts[3] != geom.Pt(0, 0, 5) || pts[5] != geom.Pt(2, 0, 5) {
		t.Fatalf("point order wrong: %v", pts)
	}
	for i, v := range vals {
		if v != float64(i) {
			t.Fatalf("value order wrong at %d: %g", i, v)
		}
	}
}

func TestPointsChunk(t *testing.T) {
	pts := []PointValue{
		{P: geom.Pt(1, 2, 10), V: 0.5},
		{P: geom.Pt(3, 4, 12), V: 0.7},
		{P: geom.Pt(5, 6, 11), V: 0.9},
	}
	c, err := NewPointsChunk(pts)
	if err != nil {
		t.Fatal(err)
	}
	if c.T != 12 {
		t.Fatalf("chunk T = %d, want max point T 12", c.T)
	}
	if c.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", c.NumPoints())
	}
	b := c.Bounds()
	if b != geom.R(1, 2, 5, 6) {
		t.Fatalf("Bounds = %v", b)
	}
	if _, err := NewPointsChunk(nil); err == nil {
		t.Fatal("empty points chunk must fail")
	}
}

func TestEndOfSectorChunk(t *testing.T) {
	lat := testLattice(t, 8, 8)
	c := NewEndOfSector(3, lat)
	if c.Kind != KindEndOfSector || c.IsData() || c.NumPoints() != 0 {
		t.Fatalf("bad EOS chunk: %+v", c)
	}
	if c.Sector.T != 3 || c.Sector.Extent != lat {
		t.Fatal("EOS metadata wrong")
	}
	if !c.Bounds().Empty() {
		t.Fatal("EOS bounds must be empty")
	}
	n := 0
	c.ForEachPoint(func(geom.Point, float64) { n++ })
	if n != 0 {
		t.Fatal("EOS must yield no points")
	}
}

func TestCloneGrid(t *testing.T) {
	lat := testLattice(t, 2, 2)
	c, err := NewGridChunk(1, lat, seqVals(4))
	if err != nil {
		t.Fatal(err)
	}
	d := c.CloneGrid()
	d.Grid.Vals[0] = 99
	if c.Grid.Vals[0] != 0 {
		t.Fatal("clone must not share value storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CloneGrid on EOS must panic")
		}
	}()
	NewEndOfSector(1, lat).CloneGrid()
}

func TestValueStats(t *testing.T) {
	lat := testLattice(t, 2, 2)
	c, err := NewGridChunk(1, lat, []float64{1, 2, math.NaN(), 4})
	if err != nil {
		t.Fatal(err)
	}
	n, min, max, sum := c.ValueStats()
	if n != 3 || min != 1 || max != 4 || sum != 7 {
		t.Fatalf("ValueStats = %d, %g, %g, %g", n, min, max, sum)
	}
}

func TestInfoValidate(t *testing.T) {
	in := testInfo()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := in
	bad.CRS = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil CRS must be invalid")
	}
	bad = in
	bad.VMin, bad.VMax = 10, 0
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted value range must be invalid")
	}
	bad = in
	bad.HasSectorMeta = true // zero lattice
	if err := bad.Validate(); err == nil {
		t.Fatal("claimed sector meta with zero lattice must be invalid")
	}
}

func TestOrganizationAndStampStrings(t *testing.T) {
	if ImageByImage.String() != "image-by-image" ||
		RowByRow.String() != "row-by-row" ||
		PointByPoint.String() != "point-by-point" {
		t.Fatal("organization strings wrong")
	}
	if StampSectorID.String() != "sector-id" || StampMeasurementTime.String() != "measurement-time" {
		t.Fatal("stamp strings wrong")
	}
}

func TestStatsBufferPeak(t *testing.T) {
	var s Stats
	s.Buffer(10)
	s.Buffer(5)
	s.Unbuffer(8)
	s.Buffer(2)
	if s.BufferedPoints() != 9 {
		t.Fatalf("buffered = %d", s.BufferedPoints())
	}
	if s.PeakBufferedPoints() != 15 {
		t.Fatalf("peak = %d", s.PeakBufferedPoints())
	}
}

func TestStatsConcurrentPeak(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Buffer(3)
				s.Unbuffer(3)
			}
		}()
	}
	wg.Wait()
	if s.BufferedPoints() != 0 {
		t.Fatalf("buffered after balanced ops = %d", s.BufferedPoints())
	}
	if p := s.PeakBufferedPoints(); p < 3 || p > 24 {
		t.Fatalf("peak = %d out of plausible range", p)
	}
}

func TestGroupErrorPropagation(t *testing.T) {
	g := NewGroup(context.Background())
	boom := errors.New("boom")
	g.Go(func(ctx context.Context) error { return boom })
	g.Go(func(ctx context.Context) error {
		<-ctx.Done() // must be cancelled by the failing stage
		return ctx.Err()
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestGroupNoError(t *testing.T) {
	g := NewGroup(context.Background())
	g.Go(func(ctx context.Context) error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

// doubler is a trivial operator used to exercise Apply wiring.
type doubler struct{}

func (doubler) Name() string                  { return "double" }
func (doubler) OutInfo(in Info) (Info, error) { return in, nil }
func (doubler) Run(ctx context.Context, in <-chan *Chunk, out chan<- *Chunk, st *Stats) error {
	for c := range in {
		st.CountIn(c)
		if c.Kind != KindGrid {
			if err := Send(ctx, out, c); err != nil {
				return err
			}
			st.CountOut(c)
			continue
		}
		d := c.CloneGrid()
		for i := range d.Grid.Vals {
			d.Grid.Vals[i] *= 2
		}
		if err := Send(ctx, out, d); err != nil {
			return err
		}
		st.CountOut(d)
	}
	return nil
}

func TestApplyPipeline(t *testing.T) {
	g := NewGroup(context.Background())
	lat := testLattice(t, 4, 1)
	var chunks []*Chunk
	for i := 0; i < 3; i++ {
		c, err := NewGridChunk(geom.Timestamp(i), lat, seqVals(4))
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, c)
	}
	chunks = append(chunks, NewEndOfSector(2, lat))

	src := FromChunks(g, testInfo(), chunks)
	mid, st1, err := Apply(g, doubler{}, src)
	if err != nil {
		t.Fatal(err)
	}
	outS, st2, err := Apply(g, doubler{}, mid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(context.Background(), outS)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("collected %d chunks", len(got))
	}
	if got[0].Grid.Vals[3] != 12 { // 3 * 2 * 2
		t.Fatalf("pipeline value = %g", got[0].Grid.Vals[3])
	}
	if got[3].Kind != KindEndOfSector {
		t.Fatal("punctuation must flow through")
	}
	if st1.PointsIn.Load() != 12 || st2.PointsOut.Load() != 12 {
		t.Fatalf("stats wrong: %v / %v", st1, st2)
	}
}

// failingOp tests that Run errors surface through the group.
type failingOp struct{}

func (failingOp) Name() string                  { return "fail" }
func (failingOp) OutInfo(in Info) (Info, error) { return in, nil }
func (failingOp) Run(ctx context.Context, in <-chan *Chunk, out chan<- *Chunk, st *Stats) error {
	return fmt.Errorf("synthetic failure")
}

func TestApplyRunErrorSurfaces(t *testing.T) {
	g := NewGroup(context.Background())
	src := FromChunks(g, testInfo(), nil)
	s, _, err := Apply(g, failingOp{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err == nil || err.Error() != "fail: synthetic failure" {
		t.Fatalf("Wait = %v", err)
	}
}

// badInfoOp tests OutInfo rejection at plan time.
type badInfoOp struct{}

func (badInfoOp) Name() string               { return "badinfo" }
func (badInfoOp) OutInfo(Info) (Info, error) { return Info{}, nil } // nil CRS -> invalid
func (badInfoOp) Run(ctx context.Context, in <-chan *Chunk, out chan<- *Chunk, st *Stats) error {
	return nil
}

func TestApplyRejectsInvalidOutInfo(t *testing.T) {
	g := NewGroup(context.Background())
	src := FromChunks(g, testInfo(), nil)
	if _, _, err := Apply(g, badInfoOp{}, src); err == nil {
		t.Fatal("invalid OutInfo must be rejected")
	}
	g.Wait()
}

func TestTeeDeliversToAll(t *testing.T) {
	g := NewGroup(context.Background())
	lat := testLattice(t, 2, 1)
	c, err := NewGridChunk(0, lat, seqVals(2))
	if err != nil {
		t.Fatal(err)
	}
	src := FromChunks(g, testInfo(), []*Chunk{c, NewEndOfSector(0, lat)})
	outs := Tee(g, src, 3)
	var wg sync.WaitGroup
	counts := make([]int, 3)
	for i, s := range outs {
		wg.Add(1)
		go func(i int, s *Stream) {
			defer wg.Done()
			got, _ := Collect(context.Background(), s)
			counts[i] = len(got)
		}(i, s)
	}
	wg.Wait()
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 2 {
			t.Fatalf("consumer %d got %d chunks", i, n)
		}
	}
}

func TestGenerateAndDrain(t *testing.T) {
	g := NewGroup(context.Background())
	lat := testLattice(t, 8, 1)
	s := Generate(g, testInfo(), func(ctx context.Context, emit func(*Chunk) bool) error {
		for i := 0; i < 5; i++ {
			c, err := NewGridChunk(geom.Timestamp(i), lat, seqVals(8))
			if err != nil {
				return err
			}
			if !emit(c) {
				return nil
			}
		}
		return nil
	})
	chunks, points, err := Drain(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if chunks != 5 || points != 40 {
		t.Fatalf("Drain = %d chunks, %d points", chunks, points)
	}
}

func TestCollectCancellation(t *testing.T) {
	g := NewGroup(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	// A source that never closes until cancelled.
	s := Generate(g, testInfo(), func(gctx context.Context, emit func(*Chunk) bool) error {
		<-gctx.Done()
		return nil
	})
	cancel()
	if _, err := Collect(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect = %v, want context.Canceled", err)
	}
	// Unblock the generator and shut down.
	gctxCancelHack(g)
	g.Wait()
}

// gctxCancelHack cancels a group from outside; only tests need this.
func gctxCancelHack(g *Group) { g.cancel() }
