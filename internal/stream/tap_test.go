package stream

import (
	"context"
	"testing"
	"time"

	"geostreams/internal/geom"
)

func tapChunk(t geom.Timestamp) *Chunk {
	return &Chunk{
		Kind: KindGrid, T: t,
		Grid: &GridPatch{
			Lat:  geom.Lattice{X0: 0, Y0: 0, DX: 1, DY: 1, W: 1, H: 1},
			Vals: []float64{float64(t)},
		},
	}
}

// feedTapSet pushes n data chunks plus one end-of-sector through a tap
// set and drains the primary, returning the tap set.
func runTapSet(t *testing.T, n int, attach func(*TapSet)) *TapSet {
	t.Helper()
	g := NewGroup(context.Background())
	in := make(chan *Chunk)
	out, ts := NewTapSet(g, &Stream{C: in})
	attach(ts)
	done := make(chan int)
	go func() {
		got := 0
		for range out.C {
			got++
		}
		done <- got
	}()
	for i := 0; i < n; i++ {
		in <- tapChunk(geom.Timestamp(i))
	}
	in <- NewEndOfSector(geom.Timestamp(n), geom.Lattice{X0: 0, Y0: 0, DX: 1, DY: 1, W: 1, H: 1})
	close(in)
	if got := <-done; got != n+1 {
		t.Fatalf("primary saw %d chunks, want %d", got, n+1)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTapSetPrimaryUnaffectedByStarvedTap(t *testing.T) {
	var tap *CreditTap
	ts := runTapSet(t, 10, func(ts *TapSet) {
		tap = ts.Attach(4) // no credit granted: every data chunk drops
	})
	if got := tap.Dropped(); got != 10 {
		t.Fatalf("starved tap dropped %d, want 10", got)
	}
	// Punctuation rides free: it must be in the tap's channel.
	var kinds []Kind
	for c := range tap.C() {
		kinds = append(kinds, c.Kind)
	}
	if len(kinds) != 1 || kinds[0] != KindEndOfSector {
		t.Fatalf("starved tap received %v, want one end-of-sector", kinds)
	}
	_, _, delivered, dropped := ts.Stats()
	if delivered != 1 || dropped != 10 {
		t.Fatalf("set stats delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestTapSetCreditBoundsDelivery(t *testing.T) {
	var tap *CreditTap
	runTapSet(t, 10, func(ts *TapSet) {
		tap = ts.Attach(16)
		tap.Grant(3)
	})
	data, punct := 0, 0
	for c := range tap.C() {
		if c.IsData() {
			data++
		} else {
			punct++
		}
	}
	if data != 3 || punct != 1 {
		t.Fatalf("tap got %d data + %d punctuation, want 3 + 1", data, punct)
	}
	if tap.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", tap.Dropped())
	}
	if tap.Credit() != 0 {
		t.Fatalf("credit %d, want 0", tap.Credit())
	}
}

func TestTapSetFullBufferDropsEvenWithCredit(t *testing.T) {
	var tap *CreditTap
	runTapSet(t, 10, func(ts *TapSet) {
		tap = ts.Attach(2) // data window of 2 chunks
		tap.Grant(1000)    // credit is not the constraint
	})
	if tap.Delivered() != 3 {
		// 2 data chunks (the window) + the end-of-sector, which rides in
		// the punctuation reserve even though the data window is full.
		t.Fatalf("delivered %d, want 3 (window + punctuation)", tap.Delivered())
	}
	if tap.Dropped() != 8 {
		t.Fatalf("dropped %d, want 8 data chunks past the full window", tap.Dropped())
	}
}

// TestTapSetPunctuationReserveSurvivesFullWindow pins the protocol
// contract that sector boundaries reach a backed-up subscriber: with the
// data window completely full and unread, punctuation must still be
// enqueued through its reserved headroom, never dropped alongside the
// shed data.
func TestTapSetPunctuationReserveSurvivesFullWindow(t *testing.T) {
	var tap *CreditTap
	runTapSet(t, 10, func(ts *TapSet) {
		tap = ts.Attach(1) // the smallest window: a single data slot
		tap.Grant(1000)
	})
	var kinds []Kind
	for c := range tap.C() {
		kinds = append(kinds, c.Kind)
	}
	if len(kinds) != 2 || kinds[0] != KindGrid || kinds[1] != KindEndOfSector {
		t.Fatalf("tap received %v, want one grid then the end-of-sector", kinds)
	}
}

// TestTapSetPunctuationReserveExhaustion bounds the guarantee: a
// consumer stalled through the entire reserve finally loses punctuation
// too (counted), instead of blocking the forwarder.
func TestTapSetPunctuationReserveExhaustion(t *testing.T) {
	g := NewGroup(context.Background())
	in := make(chan *Chunk)
	out, ts := NewTapSet(g, &Stream{C: in})
	go func() {
		for range out.C {
		}
	}()
	tap := ts.Attach(1) // capacity 1 + punctuationReserve, none consumed
	lat := geom.Lattice{X0: 0, Y0: 0, DX: 1, DY: 1, W: 1, H: 1}
	total := 1 + punctuationReserve + 3
	for i := 0; i < total; i++ {
		in <- NewEndOfSector(geom.Timestamp(i), lat)
	}
	close(in)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := int64(1 + punctuationReserve); tap.Delivered() != want {
		t.Fatalf("delivered %d punctuation, want %d (full capacity)", tap.Delivered(), want)
	}
	if tap.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3 past the exhausted reserve", tap.Dropped())
	}
}

func TestTapSetAttachAfterCloseYieldsClosedTap(t *testing.T) {
	ts := runTapSet(t, 1, func(*TapSet) {})
	tap := ts.Attach(4)
	select {
	case _, ok := <-tap.C():
		if ok {
			t.Fatal("late tap received a chunk")
		}
	case <-time.After(time.Second):
		t.Fatal("late tap's channel not closed")
	}
}

func TestTapSetCloseDetaches(t *testing.T) {
	g := NewGroup(context.Background())
	in := make(chan *Chunk)
	out, ts := NewTapSet(g, &Stream{C: in})
	go func() {
		for range out.C {
		}
	}()
	tap := ts.Attach(4)
	tap.Grant(100)
	in <- tapChunk(1)
	if c := <-tap.C(); c.T != 1 {
		t.Fatalf("tap got T=%d", c.T)
	}
	tap.Close()
	tap.Close()       // idempotent
	in <- tapChunk(2) // must not panic on a closed tap channel
	close(in)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, active, _, _ := ts.Stats(); active != 0 {
		t.Fatalf("%d taps active after close", active)
	}
}
