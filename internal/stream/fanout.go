package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"geostreams/internal/obs/trace"
)

// Fanout broadcasts one input stream to a dynamic set of taps — the
// multi-reader primitive behind shared query execution. Unlike Tee, whose
// consumer count is fixed at wiring time, taps attach (AddTap) and detach
// (Tap.Close) while the stream flows, so queries can mount onto and leave
// a running shared trunk.
//
// Semantics:
//
//   - Every chunk pointer is shared across taps; chunks are immutable by
//     contract.
//   - Delivery is per-tap blocking (each tap has a DefaultBuffer channel):
//     a slow tap exerts backpressure on the trunk, exactly like a slow
//     consumer of a private pipeline. A tap that detaches while the
//     broadcaster is blocked on it unblocks the trunk immediately.
//   - Broadcast holds the first data chunk until the first tap has
//     attached, so a trunk assembled bottom-up (operators wired, then
//     tapped) observes a consistent stream start instead of dropping a
//     prefix. After that, a tap attaching mid-stream sees chunks from its
//     attach point on — the same contract a late hub subscriber gets.
//   - When the input closes (or the group is cancelled) every attached
//     tap's channel is closed; AddTap afterwards returns an already-ended
//     tap.
type Fanout struct {
	info Info

	mu     sync.Mutex
	taps   []*Tap
	closed bool

	// armed is closed when the first tap attaches; broadcast waits on it
	// so no chunk is dropped while a mount is being assembled.
	armed     chan struct{}
	armedOnce sync.Once

	delivered atomic.Int64

	// tracer records a "fanout" span per traced chunk broadcast, labelled
	// with the trunk it serves (attach-once; traceOp is guarded by mu).
	tracer  atomic.Pointer[trace.Recorder]
	traceOp string
}

// AttachTrace wires a span recorder into the fanout, once, labelling its
// spans with op (the trunk label); later calls are no-ops.
func (f *Fanout) AttachTrace(r *trace.Recorder, op string) {
	if r == nil || !f.tracer.CompareAndSwap(nil, r) {
		return
	}
	f.mu.Lock()
	f.traceOp = op
	f.mu.Unlock()
}

// Tap is one attached reader of a Fanout.
type Tap struct {
	f    *Fanout
	s    *Stream
	c    chan *Chunk
	done chan struct{}
	once sync.Once
}

// NewFanout starts broadcasting `in` inside the group. The broadcaster
// goroutine exits when the input closes or the group context ends; either
// way all attached taps are closed.
func NewFanout(g *Group, in *Stream) *Fanout {
	f := &Fanout{info: in.Info, armed: make(chan struct{})}
	inC := in.C
	g.Go(func(ctx context.Context) error {
		defer f.finish()
		defer DrainReleasing(inC)
		for {
			select {
			case c, ok := <-inC:
				if !ok {
					return nil
				}
				if !f.broadcast(ctx, c) {
					return nil
				}
			case <-ctx.Done():
				return nil
			}
		}
	})
	return f
}

// Info returns the stream metadata taps inherit.
func (f *Fanout) Info() Info { return f.info }

// Delivered returns the total chunk deliveries across all taps.
func (f *Fanout) Delivered() int64 { return f.delivered.Load() }

// TapCount returns the number of currently attached taps.
func (f *Fanout) TapCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.taps)
}

// AddTap attaches a new reader. If the fanout has already finished the
// returned tap's stream is closed immediately.
func (f *Fanout) AddTap() *Tap {
	t := &Tap{f: f, done: make(chan struct{}), c: make(chan *Chunk, DefaultBuffer)}
	t.s = &Stream{Info: f.info, C: t.c}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		close(t.c)
		return t
	}
	f.taps = append(f.taps, t)
	f.mu.Unlock()
	f.armedOnce.Do(func() { close(f.armed) })
	return t
}

// Stream returns the tap's readable stream.
func (t *Tap) Stream() *Stream { return t.s }

// Close detaches the tap from the fanout. The tap's channel is not closed
// (the broadcaster may be mid-send); the detaching consumer simply stops
// reading. Close is idempotent and unblocks a broadcaster currently
// blocked on this tap.
//
// Chunks still buffered on the tap are the broadcaster's to reclaim: it is
// the only sender, so it alone can drain the buffer without racing a send
// (it reaps the tap on its next delivery, or in finish). Only when the
// fanout has already finished — no broadcaster left to race — does Close
// drain the residue itself. Either way every buffered reference is
// released; a detaching reader never strands pool-backed chunks.
func (t *Tap) Close() {
	t.once.Do(func() {
		close(t.done)
		t.f.mu.Lock()
		finished := t.f.closed
		t.f.mu.Unlock()
		if finished {
			DrainReleasing(t.c)
		}
	})
}

// reap removes a detached tap from the broadcast set and releases whatever
// its buffer still holds. Called only from the broadcaster goroutine, after
// it has observed t.done — so no send can race the drain.
func (f *Fanout) reap(t *Tap) {
	f.mu.Lock()
	for i, x := range f.taps {
		if x == t {
			f.taps = append(f.taps[:i], f.taps[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
	DrainReleasing(t.c)
}

// broadcast delivers one chunk to every attached tap; it reports false
// when the group context ended mid-delivery.
func (f *Fanout) broadcast(ctx context.Context, c *Chunk) bool {
	select {
	case <-f.armed:
	case <-ctx.Done():
		return false
	}
	// Capture the trace fields before any hand-off: once a consumer holds
	// a reference it may release the chunk, and a pool-backed chunk's
	// fields are unreadable after its last Release.
	var begin time.Time
	if tr, tT, punct := c.Trace, int64(c.T), !c.IsData(); tr != 0 {
		begin = time.Now()
		defer func() {
			f.mu.Lock()
			op := f.traceOp
			f.mu.Unlock()
			f.tracer.Load().Record(tr, trace.StageFanout, op,
				begin, time.Since(begin), tT, punct)
		}()
	}
	taps := f.snapshot()
	// One reference per tap; the incoming reference covers the first.
	for i := 1; i < len(taps); i++ {
		c.Retain()
	}
	if len(taps) == 0 {
		c.Release()
		return true
	}
	for i, t := range taps {
		// A tap known to be detached is reaped, not sent to: with both the
		// send and the done arm ready, select would sometimes deposit a chunk
		// nobody reads again.
		select {
		case <-t.done:
			f.reap(t)
			c.Release()
			continue
		default:
		}
		select {
		case t.c <- c:
			f.delivered.Add(1)
		case <-t.done:
			// Tap detached while we were blocked on it; skip it.
			f.reap(t)
			c.Release()
		case <-ctx.Done():
			for j := i; j < len(taps); j++ {
				c.Release()
			}
			return false
		}
	}
	return true
}

func (f *Fanout) snapshot() []*Tap {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Tap(nil), f.taps...)
}

// finish marks the fanout ended and closes every still-attached tap. Taps
// that detached without being reaped (no broadcast ran after their Close)
// still hold buffered references; with the broadcaster gone the drain here
// is the one that frees them. Attached taps are left to their readers, who
// drain to the close.
func (f *Fanout) finish() {
	f.mu.Lock()
	taps := f.taps
	f.taps = nil
	f.closed = true
	f.mu.Unlock()
	for _, t := range taps {
		close(t.c)
		select {
		case <-t.done:
			DrainReleasing(t.c)
		default:
		}
	}
}
