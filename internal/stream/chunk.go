// Package stream is the streaming substrate of the GeoStreams engine: the
// physical representation of a GeoStream (Definition 5) as a sequence of
// chunks flowing through channel-connected operators, plus the metadata,
// statistics, and plumbing that the operator implementations in
// internal/core build on.
//
// A GeoStream G : X → V is transported as a channel of chunks. A chunk is
// one of:
//
//   - a grid patch: a dense, lattice-aligned block of values sharing one
//     timestamp — rows of a row-by-row instrument, whole frames of an
//     image-by-image instrument;
//   - a point list: individually located and timestamped samples — the
//     point-by-point organization of LIDAR-class instruments (Fig. 1c);
//   - end-of-sector punctuation: metadata marking the completion of a scan
//     sector and carrying its full spatial extent. §3.2 and §3.3 of the
//     paper rely on exactly this device ("auxiliary information about the
//     spatial region currently scanned by an instrument and added as
//     metadata to the stream") to keep transforms and compositions from
//     blocking unboundedly.
package stream

import (
	"fmt"
	"math"

	"geostreams/internal/geom"
)

// Kind discriminates chunk payloads.
type Kind int

const (
	// KindGrid is a dense lattice-aligned patch of values.
	KindGrid Kind = iota
	// KindPoints is a list of individually located samples.
	KindPoints
	// KindEndOfSector is punctuation: the sector with timestamp T is
	// complete; Sector describes its full extent.
	KindEndOfSector
)

func (k Kind) String() string {
	switch k {
	case KindGrid:
		return "grid"
	case KindPoints:
		return "points"
	case KindEndOfSector:
		return "eos"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PointValue is one sample (x, G(x)) of a stream in set notation.
type PointValue struct {
	P geom.Point
	V float64
}

// GridPatch is a dense block of values on a lattice; Vals is row-major
// with len == Lat.W·Lat.H. All points of a patch share the chunk's
// timestamp.
type GridPatch struct {
	Lat  geom.Lattice
	Vals []float64
}

// Validate checks the patch invariants.
func (g *GridPatch) Validate() error {
	if err := g.Lat.Validate(); err != nil {
		return err
	}
	if len(g.Vals) != g.Lat.NumPoints() {
		return fmt.Errorf("stream: grid patch has %d values for %d lattice points",
			len(g.Vals), g.Lat.NumPoints())
	}
	return nil
}

// At returns the value at grid index (col, row) of the patch.
func (g *GridPatch) At(col, row int) float64 { return g.Vals[row*g.Lat.W+col] }

// SectorMeta is the §3.2 stream metadata describing a completed (or, in a
// stream's Info, the nominally expected) scan sector.
type SectorMeta struct {
	T geom.Timestamp
	// Extent is the full lattice the instrument scanned for this sector.
	Extent geom.Lattice
}

// Chunk is one stream element. Chunks are immutable once sent: operators
// must copy-on-write (see CloneGrid) rather than mutate a received chunk,
// because fan-out stages share chunks between consumers.
type Chunk struct {
	Kind Kind
	// T is the chunk timestamp. For grid chunks every point shares it; for
	// end-of-sector it identifies the completed sector; for point chunks it
	// is a representative (the maximum of the per-point timestamps).
	T      geom.Timestamp
	Grid   *GridPatch   // when Kind == KindGrid
	Points []PointValue // when Kind == KindPoints
	Sector *SectorMeta  // when Kind == KindEndOfSector

	// Ingest is the wall-clock time (unix nanoseconds) at which the
	// instrument produced the oldest data this chunk carries; 0 means
	// unstamped. Instruments call StampIngest at emission; operators
	// propagate it to derived chunks with InheritIngest (keeping the oldest
	// contributing stamp), so the delivery stage can measure end-to-end
	// data freshness. The stamp must be set before the chunk is sent —
	// chunks are immutable once published.
	Ingest int64

	// Trace is the chunk's trace ID (see internal/obs/trace); 0 means
	// untraced. The DSMS stamps a sampled subset of chunks at ingest —
	// before first publication, like Ingest — and operators propagate the
	// ID to derived chunks through InheritIngest, so recording sites can
	// follow one chunk's causal path with a single integer check.
	Trace uint64

	// pool, when non-nil, marks the chunk as pool-backed: its Grid.Vals
	// came from exec.AllocVals and the chunk struct itself from a
	// sync.Pool. Consumers balance references with Retain/Release (see
	// pooled.go); both are no-ops when pool is nil, so code written for
	// the ref-counted protocol is safe on ordinary chunks.
	pool *poolState
}

// StampIngest marks the chunk as ingested at the given wall-clock time in
// unix nanoseconds; instruments call it at emission.
func (c *Chunk) StampIngest(nanos int64) { c.Ingest = nanos }

// InheritIngest propagates the ingest stamp from a source chunk onto a
// derived one, keeping the oldest (smallest nonzero) stamp so end-to-end
// age reflects the stalest contributing data. May be called repeatedly
// with each source of a multi-input derivation.
func (c *Chunk) InheritIngest(src *Chunk) {
	if src == nil {
		return
	}
	// The trace ID rides along: a derived chunk adopts the first traced
	// source it inherits from, so a sampled chunk's ID survives every
	// 1:1 and merging transform that propagates freshness.
	if c.Trace == 0 {
		c.Trace = src.Trace
	}
	if src.Ingest == 0 {
		return
	}
	if c.Ingest == 0 || src.Ingest < c.Ingest {
		c.Ingest = src.Ingest
	}
}

// MinIngest combines two ingest stamps, returning the oldest nonzero one
// (0 when both are unstamped); buffering operators use it to fold the
// stamps of everything contributing to a sector.
func MinIngest(a, b int64) int64 {
	if a == 0 {
		return b
	}
	if b == 0 || a < b {
		return a
	}
	return b
}

// NewGridChunk builds a grid chunk; the values slice is adopted, not
// copied.
func NewGridChunk(t geom.Timestamp, lat geom.Lattice, vals []float64) (*Chunk, error) {
	c := &Chunk{Kind: KindGrid, T: t, Grid: &GridPatch{Lat: lat, Vals: vals}}
	if err := c.Grid.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewPointsChunk builds a point-list chunk; the slice is adopted. The
// chunk timestamp is the maximum point timestamp.
func NewPointsChunk(pts []PointValue) (*Chunk, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("stream: points chunk must not be empty")
	}
	t := pts[0].P.T
	for _, p := range pts[1:] {
		if p.P.T > t {
			t = p.P.T
		}
	}
	return &Chunk{Kind: KindPoints, T: t, Points: pts}, nil
}

// NewEndOfSector builds end-of-sector punctuation.
func NewEndOfSector(t geom.Timestamp, extent geom.Lattice) *Chunk {
	return &Chunk{Kind: KindEndOfSector, T: t, Sector: &SectorMeta{T: t, Extent: extent}}
}

// NumPoints returns the number of data points the chunk carries
// (0 for punctuation).
func (c *Chunk) NumPoints() int {
	switch c.Kind {
	case KindGrid:
		return len(c.Grid.Vals)
	case KindPoints:
		return len(c.Points)
	}
	return 0
}

// IsData reports whether the chunk carries point data (not punctuation).
func (c *Chunk) IsData() bool { return c.Kind == KindGrid || c.Kind == KindPoints }

// ForEachPoint invokes fn for every point in the chunk with its full
// spatio-temporal location and value. Punctuation chunks yield nothing.
func (c *Chunk) ForEachPoint(fn func(p geom.Point, v float64)) {
	switch c.Kind {
	case KindGrid:
		lat := c.Grid.Lat
		i := 0
		for row := 0; row < lat.H; row++ {
			y := lat.Y0 + float64(row)*lat.DY
			for col := 0; col < lat.W; col++ {
				fn(geom.Point{S: geom.Vec2{X: lat.X0 + float64(col)*lat.DX, Y: y}, T: c.T},
					c.Grid.Vals[i])
				i++
			}
		}
	case KindPoints:
		for _, pv := range c.Points {
			fn(pv.P, pv.V)
		}
	}
}

// CloneGrid returns a deep copy of a grid chunk for copy-on-write
// transforms; it panics on non-grid chunks (programming error).
func (c *Chunk) CloneGrid() *Chunk {
	if c.Kind != KindGrid {
		panic("stream: CloneGrid on non-grid chunk")
	}
	vals := make([]float64, len(c.Grid.Vals))
	copy(vals, c.Grid.Vals)
	return &Chunk{Kind: KindGrid, T: c.T, Grid: &GridPatch{Lat: c.Grid.Lat, Vals: vals}, Ingest: c.Ingest, Trace: c.Trace}
}

// Bounds returns the spatial bounding box of the chunk's points (empty for
// punctuation).
func (c *Chunk) Bounds() geom.Rect {
	switch c.Kind {
	case KindGrid:
		return c.Grid.Lat.Bounds()
	case KindPoints:
		b := geom.EmptyRect()
		for _, pv := range c.Points {
			b = b.Union(geom.Rect{MinX: pv.P.S.X, MinY: pv.P.S.Y, MaxX: pv.P.S.X, MaxY: pv.P.S.Y})
		}
		return b
	}
	return geom.EmptyRect()
}

// ValueStats returns basic value statistics over the chunk's points,
// ignoring NaN: count of finite values, min, max, and sum. Grid chunks scan
// Vals directly — the per-pixel location a ForEachPoint closure would
// construct is dead weight for value-only statistics.
func (c *Chunk) ValueStats() (n int, min, max, sum float64) {
	min, max = math.Inf(1), math.Inf(-1)
	if c.Kind == KindGrid {
		for _, v := range c.Grid.Vals {
			if math.IsNaN(v) {
				continue
			}
			n++
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return n, min, max, sum
	}
	c.ForEachPoint(func(_ geom.Point, v float64) {
		if math.IsNaN(v) {
			return
		}
		n++
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	})
	return n, min, max, sum
}
