package stream

import (
	"sync"
	"sync/atomic"

	"geostreams/internal/exec"
	"geostreams/internal/geom"
)

// Pool-backed chunks: the zero-copy ingest path decodes wire frames
// straight into exec.AllocVals buffers and hands the result through the
// hub and the operator pipelines without copying. That is only safe if the
// buffer goes back to the pool exactly when the last consumer is done, so
// pool-backed chunks carry a reference count.
//
// Ownership contract (DESIGN.md §12):
//
//   - A chunk travels a channel with exactly one reference: sending
//     transfers ownership to the receiver.
//   - A fan-out point that hands one chunk to n consumers calls Retain
//     n−1 times BEFORE the first hand-off (Tee, Fanout.broadcast, hub
//     routing, egress tap offers).
//   - A consumer calls Release exactly once when it stops using the chunk:
//     after deriving its output, after copying values out, or when
//     dropping the chunk. Release must be the consumer's LAST touch of the
//     chunk — after the final Release the struct and buffer are reused.
//   - Code that cannot prove it holds the last reference simply does not
//     call Release: a missed Release downgrades the chunk to ordinary
//     garbage-collected memory (the pre-PR-7 behaviour), which is always
//     safe. Releasing more times than retained is the only corruption
//     hazard, and panics.
//
// Retain and Release are no-ops on chunks without pool state (every chunk
// built by the plain constructors), so operators apply the protocol
// unconditionally.

// poolState is the reference count of one pool-backed chunk plus the
// back-pointer Release needs to return the containing box to its pool.
type poolState struct {
	refs atomic.Int32
	box  *gridBox
}

// gridBox bundles the chunk header, its grid patch, and the pool state in
// one pooled allocation, so a steady-state decode allocates nothing.
type gridBox struct {
	c  Chunk
	g  GridPatch
	ps poolState
}

var gridBoxPool = sync.Pool{New: func() any { return new(gridBox) }}

// pooledLive counts live pool-backed chunks (built minus recycled); the
// leak tests in this package and internal/dsms use it.
var pooledLive atomic.Int64

// NewPooledGridChunk builds a pool-backed grid chunk with one reference,
// adopting vals (which should come from exec.AllocVals — the final Release
// recycles it there). The caller owns the single reference and transfers
// it by sending the chunk downstream.
func NewPooledGridChunk(t geom.Timestamp, lat geom.Lattice, vals []float64) (*Chunk, error) {
	b := gridBoxPool.Get().(*gridBox)
	b.g = GridPatch{Lat: lat, Vals: vals}
	if err := b.g.Validate(); err != nil {
		b.g = GridPatch{}
		gridBoxPool.Put(b)
		return nil, err
	}
	b.c = Chunk{Kind: KindGrid, T: t, Grid: &b.g, pool: &b.ps}
	b.ps.box = b
	b.ps.refs.Store(1)
	pooledLive.Add(1)
	return &b.c, nil
}

// Pooled reports whether the chunk is pool-backed (and so participates in
// reference counting).
func (c *Chunk) Pooled() bool { return c != nil && c.pool != nil }

// Refs returns the current reference count of a pool-backed chunk (0 for
// ordinary chunks); tests use it to pin the ownership protocol.
func (c *Chunk) Refs() int {
	if c == nil || c.pool == nil {
		return 0
	}
	return int(c.pool.refs.Load())
}

// Retain adds one reference to a pool-backed chunk; a no-op otherwise.
// Fan-out points call it once per extra consumer before handing the chunk
// to any of them.
func (c *Chunk) Retain() {
	if c == nil || c.pool == nil {
		return
	}
	c.pool.refs.Add(1)
}

// Release drops one reference; the last one recycles the value buffer into
// the exec pool and the chunk struct into its own pool. No-op on ordinary
// chunks. Release must be the caller's last touch of the chunk.
func (c *Chunk) Release() {
	if c == nil || c.pool == nil {
		return
	}
	n := c.pool.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("stream: pooled chunk over-released")
	}
	b := c.pool.box
	vals := b.g.Vals
	// Poison before recycling so a use-after-release trips loudly (nil
	// Grid) instead of silently reading a reused buffer.
	b.c = Chunk{}
	b.g = GridPatch{}
	exec.Recycle(vals)
	pooledLive.Add(-1)
	gridBoxPool.Put(b)
}

// PooledLive returns the number of live pool-backed chunks; leak tests
// assert it returns to a baseline.
func PooledLive() int64 { return pooledLive.Load() }

// DrainReleasing consumes whatever is already buffered on ch without
// blocking, releasing each chunk. Operator wiring calls it on the input
// channel when an operator exits early (a panic or cancellation), so
// pool-backed chunks parked in the queue go back to the pool instead of
// bleeding out of it. Chunks still held by a blocked upstream sender are
// not reachable here; they fall to the garbage collector, which is safe.
func DrainReleasing(ch <-chan *Chunk) {
	for {
		select {
		case c, ok := <-ch:
			if !ok {
				return
			}
			c.Release()
		default:
			return
		}
	}
}
