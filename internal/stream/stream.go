package stream

import (
	"context"
	"fmt"
)

// DefaultBuffer is the channel depth between pipeline stages. A small
// buffer decouples producer/consumer scheduling without hiding the
// blocking behaviour the experiments measure.
const DefaultBuffer = 4

// Stream is the physical form of a GeoStream: static Info plus a channel
// of chunks. The channel is closed by the producing stage when the stream
// ends (or the pipeline is cancelled).
type Stream struct {
	Info Info
	C    <-chan *Chunk
}

// Operator is a unary stream operator: the query algebra's closure
// property (§3) is this signature — a GeoStream in, a GeoStream out.
//
// OutInfo validates the input metadata and computes the output metadata at
// plan time; Run moves the data at execution time. Run must forward or
// drop every input chunk, send outputs via Send (so cancellation works),
// and return when `in` closes. Run must not close `out`; the wiring in
// Apply does that.
type Operator interface {
	Name() string
	OutInfo(in Info) (Info, error)
	Run(ctx context.Context, in <-chan *Chunk, out chan<- *Chunk, st *Stats) error
}

// BinaryOperator is a two-input operator (stream composition, §3.3).
type BinaryOperator interface {
	Name() string
	OutInfo(a, b Info) (Info, error)
	Run(ctx context.Context, a, b <-chan *Chunk, out chan<- *Chunk, st *Stats) error
}

// Send delivers a chunk to out unless the context is cancelled; it returns
// the context error on cancellation so stages unwind promptly even when
// their consumer is gone.
func Send(ctx context.Context, out chan<- *Chunk, c *Chunk) error {
	select {
	case out <- c:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// EmitCounted sends a chunk downstream and records it in st (when st is
// non-nil). Sending transfers the chunk's reference to the receiver, so
// EmitCounted holds an extra reference across the send — the stats read
// after delivery would otherwise race with a fast consumer releasing a
// pool-backed chunk. On a cancelled send the chunk is fully released
// (undelivered chunks are dropped); the caller must not touch it after an
// error either way.
func EmitCounted(ctx context.Context, out chan<- *Chunk, c *Chunk, st *Stats) error {
	c.Retain()
	if err := Send(ctx, out, c); err != nil {
		c.Release() // the stats reference
		c.Release() // the undelivered transfer reference
		return err
	}
	if st != nil {
		st.CountOut(c)
	}
	c.Release()
	return nil
}

// Apply wires a unary operator onto a stream inside the group, returning
// the output stream and the operator's stats instance.
func Apply(g *Group, op Operator, in *Stream) (*Stream, *Stats, error) {
	outInfo, err := op.OutInfo(in.Info)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", op.Name(), err)
	}
	if err := outInfo.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%s: produces invalid stream: %w", op.Name(), err)
	}
	st := NewStats(op.Name())
	out := make(chan *Chunk, DefaultBuffer)
	st.watchQueue(out)
	inC := in.C
	g.Go(func(ctx context.Context) error {
		defer close(out)
		// On any exit — including a panic unwinding through Group.Go's
		// recover — hand queued pool-backed input chunks back to the
		// buffer pool. Without this a panicking query permanently bleeds
		// whatever its input queue held out of the size-classed pool.
		defer DrainReleasing(inC)
		st.markRunning()
		if err := op.Run(ctx, inC, out, st); err != nil {
			return fmt.Errorf("%s: %w", op.Name(), err)
		}
		return nil
	})
	return &Stream{Info: outInfo, C: out}, st, nil
}

// Apply2 wires a binary operator onto two streams.
func Apply2(g *Group, op BinaryOperator, a, b *Stream) (*Stream, *Stats, error) {
	outInfo, err := op.OutInfo(a.Info, b.Info)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", op.Name(), err)
	}
	if err := outInfo.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%s: produces invalid stream: %w", op.Name(), err)
	}
	st := NewStats(op.Name())
	out := make(chan *Chunk, DefaultBuffer)
	st.watchQueue(out)
	aC, bC := a.C, b.C
	g.Go(func(ctx context.Context) error {
		defer close(out)
		defer DrainReleasing(aC)
		defer DrainReleasing(bC)
		st.markRunning()
		if err := op.Run(ctx, aC, bC, out, st); err != nil {
			return fmt.Errorf("%s: %w", op.Name(), err)
		}
		return nil
	})
	return &Stream{Info: outInfo, C: out}, st, nil
}

// FromChunks builds a source stream that replays the given chunks inside
// the group — the standard way tests and benchmarks feed pipelines.
func FromChunks(g *Group, info Info, chunks []*Chunk) *Stream {
	out := make(chan *Chunk, DefaultBuffer)
	g.Go(func(ctx context.Context) error {
		defer close(out)
		for _, c := range chunks {
			if err := Send(ctx, out, c); err != nil {
				return nil // consumer gone; not an error for a source
			}
		}
		return nil
	})
	return &Stream{Info: info, C: out}
}

// Generate builds a source stream from a producer callback. The producer
// sends chunks via the provided emit function and returns when done; emit
// returns false when the pipeline was cancelled.
func Generate(g *Group, info Info, produce func(ctx context.Context, emit func(*Chunk) bool) error) *Stream {
	out := make(chan *Chunk, DefaultBuffer)
	g.Go(func(ctx context.Context) error {
		defer close(out)
		emit := func(c *Chunk) bool { return Send(ctx, out, c) == nil }
		return produce(ctx, emit)
	})
	return &Stream{Info: info, C: out}
}

// Collect drains a stream into a slice; tests and sinks use it.
func Collect(ctx context.Context, s *Stream) ([]*Chunk, error) {
	var out []*Chunk
	for {
		select {
		case c, ok := <-s.C:
			if !ok {
				return out, nil
			}
			out = append(out, c)
		case <-ctx.Done():
			return out, ctx.Err()
		}
	}
}

// Drain consumes and discards a stream, returning totals; benchmark sinks
// use it.
func Drain(ctx context.Context, s *Stream) (chunks, points int64, err error) {
	for {
		select {
		case c, ok := <-s.C:
			if !ok {
				return chunks, points, nil
			}
			chunks++
			points += int64(c.NumPoints())
			c.Release()
		case <-ctx.Done():
			return chunks, points, ctx.Err()
		}
	}
}

// Tee duplicates a stream to n consumers. Every chunk pointer is shared —
// chunks are immutable by contract — and delivery is synchronous per
// consumer, so one slow consumer exerts backpressure on all (the same
// semantics a shared restriction stage has in the DSMS server).
func Tee(g *Group, in *Stream, n int) []*Stream {
	outs := make([]chan *Chunk, n)
	streams := make([]*Stream, n)
	for i := range outs {
		outs[i] = make(chan *Chunk, DefaultBuffer)
		streams[i] = &Stream{Info: in.Info, C: outs[i]}
	}
	inC := in.C
	g.Go(func(ctx context.Context) error {
		defer func() {
			for _, o := range outs {
				close(o)
			}
		}()
		defer DrainReleasing(inC)
		for {
			select {
			case c, ok := <-inC:
				if !ok {
					return nil
				}
				// Each consumer gets its own reference; the incoming one
				// covers the first. Retain before any hand-off — a fast
				// consumer may otherwise release the last reference while
				// the chunk is still queued for the next.
				for i := 1; i < len(outs); i++ {
					c.Retain()
				}
				for i, o := range outs {
					if err := Send(ctx, o, c); err != nil {
						for j := i; j < len(outs); j++ {
							c.Release()
						}
						return nil
					}
				}
			case <-ctx.Done():
				return nil
			}
		}
	})
	return streams
}
