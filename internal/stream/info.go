package stream

import (
	"fmt"

	"geostreams/internal/coord"
	"geostreams/internal/geom"
)

// Organization is the physical point organization of a GeoStream (Fig. 1
// of the paper): it determines, more than anything else, how much state
// the transform and composition operators must buffer.
type Organization int

const (
	// ImageByImage: whole rectangular frames arrive at once (airborne
	// cameras, Fig. 1a).
	ImageByImage Organization = iota
	// RowByRow: single scan lines arrive at a time (GOES-class satellite
	// imagers, Fig. 1b).
	RowByRow
	// PointByPoint: individually located points ordered only by time
	// (LIDAR-class instruments, Fig. 1c).
	PointByPoint
)

func (o Organization) String() string {
	switch o {
	case ImageByImage:
		return "image-by-image"
	case RowByRow:
		return "row-by-row"
	case PointByPoint:
		return "point-by-point"
	}
	return fmt.Sprintf("organization(%d)", int(o))
}

// StampPolicy says what the timestamps of a stream mean. §3.3 of the
// paper: composition only ever matches points when both streams carry
// scan-sector identifiers; measurement-time stamps of different spectral
// scans never coincide.
type StampPolicy int

const (
	// StampSectorID: T is the scan-sector identifier.
	StampSectorID StampPolicy = iota
	// StampMeasurementTime: T is the (simulated) acquisition instant.
	StampMeasurementTime
)

func (p StampPolicy) String() string {
	if p == StampMeasurementTime {
		return "measurement-time"
	}
	return "sector-id"
}

// Info is the static metadata of a GeoStream: everything an operator or
// the planner can know before the first chunk arrives.
type Info struct {
	// Band names the spectral channel or derived product ("vis", "nir",
	// "ndvi", ...).
	Band string
	// CRS is the coordinate system associated with the spatial component
	// (Definition 5); never nil for a valid stream.
	CRS coord.CRS
	// Org is the physical point organization.
	Org Organization
	// Stamp is the timestamping policy.
	Stamp StampPolicy
	// SectorGeom is the nominal full lattice of one scan sector — the
	// §3.2 metadata that bounds operator buffering. Valid only when
	// HasSectorMeta.
	SectorGeom    geom.Lattice
	HasSectorMeta bool
	// VMin, VMax is the nominal radiometric value range, used as the
	// default domain for stretches and rendering.
	VMin, VMax float64
}

// Validate checks the invariants a stream's Info must satisfy.
func (in Info) Validate() error {
	if in.CRS == nil {
		return fmt.Errorf("stream: info %q has no CRS", in.Band)
	}
	if in.HasSectorMeta {
		if err := in.SectorGeom.Validate(); err != nil {
			return fmt.Errorf("stream: info %q sector geometry: %w", in.Band, err)
		}
	}
	if in.VMax < in.VMin {
		return fmt.Errorf("stream: info %q value range [%g, %g] inverted", in.Band, in.VMin, in.VMax)
	}
	return nil
}

func (in Info) String() string {
	crs := "<nil>"
	if in.CRS != nil {
		crs = in.CRS.Name()
	}
	return fmt.Sprintf("stream(%s, %s, %s, %s)", in.Band, crs, in.Org, in.Stamp)
}
