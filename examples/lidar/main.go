// LIDAR: the point-by-point organization of the paper's Fig. 1c —
// "non-uniform point lattice structures, points are only ordered by
// time". A simulated two-return laser scanner produces elevation and
// intensity streams over the same shot pattern; the program composes
// them point-wise (possible because both returns share exact
// spatio-temporal locations), restricts by time and by value, and
// re-projects the surviving points to UTM — all without any grid.
package main

import (
	"context"
	"fmt"
	"log"

	"geostreams"
	"geostreams/internal/core"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
	"geostreams/internal/valueset"
)

func main() {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)

	scene := geostreams.DefaultScene(3)
	scanner := &sat.LIDARScanner{
		Name:   "als-2",
		Region: geostreams.R(-121.2, 36.9, -120.8, 37.3),
		Bands: []sat.Band{
			{Name: "elevation", Field: scene.BandField(sat.BandVIS)},
			{Name: "intensity", Field: scene.BandField(sat.BandNIR)},
		},
		PointsPerChunk: 128,
		NumChunks:      16,
		Seed:           11,
	}
	streams, err := scanner.Streams(g)
	if err != nil {
		log.Fatal(err)
	}

	// Normalized ratio of the two returns, point-wise: both streams share
	// the exact shot pattern, so composition pairs points by identical
	// spatio-temporal location.
	ratio, _, err := geostreams.Compose(g, geostreams.Div,
		streams["intensity"], streams["elevation"])
	if err != nil {
		log.Fatal(err)
	}

	// Keep only the second half of the flight line (temporal restriction)
	// and shots with a strong ratio (value restriction).
	half, _, err := geostreams.RestrictTime(g, ratio, geostreams.Interval(1024, 1<<62))
	if err != nil {
		log.Fatal(err)
	}
	strong, _, err := stream.Apply(g, core.ValueRestrict{Values: valueset.Above{Threshold: 1.0}}, half)
	if err != nil {
		log.Fatal(err)
	}

	// Re-project the surviving points to UTM zone 10 — for a
	// point-by-point stream this is a zero-buffer point-wise mapping.
	ll, err := geostreams.ParseCRS("latlon")
	check(err)
	utm, err := geostreams.ParseCRS("utm:10")
	check(err)
	reproj := core.NewReproject(ll, utm, core.Nearest, false)
	out, st, err := stream.Apply(g, reproj, strong)
	check(err)

	chunks, err := geostreams.Collect(ctx, out)
	check(err)
	check(g.Wait())

	total, shown := 0, 0
	fmt.Println("shot time   UTM easting   UTM northing   intensity/elevation")
	for _, c := range chunks {
		for _, pv := range c.Points {
			total++
			if shown < 10 {
				fmt.Printf("%9d   %11.1f   %12.1f   %.3f\n", pv.P.T, pv.P.S.X, pv.P.S.Y, pv.V)
				shown++
			}
		}
	}
	fmt.Printf("... %d shots total survived the restrictions\n", total)
	fmt.Printf("re-projection buffered %d points (point streams map point-wise)\n",
		st.PeakBufferedPoints())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
