// Quickstart: build a simulated two-band satellite stream, compose the
// bands into NDVI with the stream algebra, restrict to a region of
// interest, and print per-sector statistics — the smallest end-to-end
// GeoStreams program.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"geostreams"
)

func main() {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)

	// A GOES-like instrument scanning the Central Valley: two spectral
	// bands, row-by-row organization, four scan sectors.
	scene := geostreams.DefaultScene(42)
	region := geostreams.R(-122, 36, -120, 38)
	imager, err := geostreams.NewLatLonImager(region, 128, 96, scene,
		[]string{"vis", "nir"}, geostreams.RowByRow, 4)
	if err != nil {
		log.Fatal(err)
	}
	bands, err := imager.Streams(g)
	if err != nil {
		log.Fatal(err)
	}

	// NDVI = (NIR − VIS) / (NIR + VIS), then restrict to a region of
	// interest — the two central operator classes of the query model.
	ndvi, _, err := geostreams.NDVI(g, bands["nir"], bands["vis"])
	if err != nil {
		log.Fatal(err)
	}
	roi := geostreams.RectRegion(geostreams.R(-121.5, 36.5, -120.5, 37.5))
	out, stats, err := geostreams.Restrict(g, ndvi, roi)
	if err != nil {
		log.Fatal(err)
	}

	// Consume the continuous result: per scan sector, report mean NDVI
	// over the region of interest.
	type acc struct {
		n   int
		sum float64
	}
	bySector := map[geostreams.Timestamp]*acc{}
	chunks, err := geostreams.Collect(ctx, out)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		log.Fatal(err)
	}
	for _, c := range chunks {
		c.ForEachPoint(func(p geostreams.Point, v float64) {
			if math.IsNaN(v) {
				return
			}
			a := bySector[p.T]
			if a == nil {
				a = &acc{}
				bySector[p.T] = a
			}
			a.n++
			a.sum += v
		})
	}

	sectors := make([]geostreams.Timestamp, 0, len(bySector))
	for t := range bySector {
		sectors = append(sectors, t)
	}
	sort.Slice(sectors, func(i, j int) bool { return sectors[i] < sectors[j] })
	fmt.Println("sector  points  mean NDVI over ROI")
	for _, t := range sectors {
		a := bySector[t]
		fmt.Printf("%6d  %6d  %.4f\n", t, a.n, a.sum/float64(a.n))
	}
	fmt.Printf("\nrestriction operator: %d points in, %d out, peak buffer %d (a restriction never buffers)\n",
		stats.PointsIn.Load(), stats.PointsOut.Load(), stats.PeakBufferedPoints())
}
