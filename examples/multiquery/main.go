// Multiquery: the Fig. 3 scenario — one DSMS server over a simulated GOES
// feed serving many concurrent continuous queries, each with its own
// region of interest, multiplexed through the shared cascade-tree
// restriction stage. Clients connect over real HTTP and receive PNG
// frames; the program then prints the hub routing telemetry showing that
// each query only received the data its region needed.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"geostreams"
	"geostreams/internal/dsms"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Server over a three-band instrument emitting 4 sectors.
	srv := geostreams.NewServer(ctx)
	scene := geostreams.DefaultScene(7)
	imager, err := geostreams.NewLatLonImager(
		geostreams.R(-122, 36, -120, 38), 160, 120, scene,
		[]string{"vis", "nir", "ir"}, geostreams.RowByRow, 4)
	if err != nil {
		log.Fatal(err)
	}
	streams, err := imager.Streams(srv.Group())
	if err != nil {
		log.Fatal(err)
	}
	for _, band := range []string{"vis", "nir", "ir"} {
		if err := srv.AddSource(streams[band]); err != nil {
			log.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close() //nolint:errcheck

	// Eight clients with different products and regions.
	queries := []struct{ label, q, cm string }{
		{"visible NW", "rselect(vis, rect(-122, 37, -121, 38))", "gray"},
		{"visible SE", "rselect(vis, rect(-121, 36, -120, 37))", "gray"},
		{"NDVI valley", "stretch(rselect(ndvi(nir, vis), rect(-121.6, 36.4, -120.4, 37.6)), linear, 0, 255)", "ndvi"},
		{"thermal full", "stretch(ir, linear, 0, 255)", "thermal"},
		{"cloud mask", "threshold(vis, 650, 0, 255)", "gray"},
		{"veg classes", "vselect(ndvi(nir, vis), above(0.4))", "ndvi"},
		{"zoomed city", "zoomin(rselect(vis, rect(-121.2, 36.8, -120.8, 37.2)), 2)", "gray"},
		{"coarse overview", "zoomout(vis, 4)", "gray"},
	}
	client := dsms.NewClient(ts.URL)
	type reg struct {
		label string
		id    int64
	}
	regs := make([]reg, 0, len(queries))
	for _, q := range queries {
		qi, err := client.Register(q.q, q.cm)
		if err != nil {
			log.Fatalf("register %s: %v", q.label, err)
		}
		regs = append(regs, reg{q.label, int64(qi.ID)})
		fmt.Printf("registered %-16s as query %d\n", q.label, qi.ID)
	}
	srv.Start()

	// Each client fetches its frames concurrently.
	var wg sync.WaitGroup
	results := make([]string, len(regs))
	for i, r := range regs {
		wg.Add(1)
		go func(i int, r reg) {
			defer wg.Done()
			frames, bytes := 0, 0
			for {
				f, ok, err := client.NextFrame(r.id, 10*time.Second)
				if err != nil {
					results[i] = fmt.Sprintf("%-16s error: %v", r.label, err)
					return
				}
				if !ok {
					break
				}
				frames++
				bytes += len(f.PNG)
			}
			results[i] = fmt.Sprintf("%-16s received %d frames, %6d PNG bytes", r.label, frames, bytes)
		}(i, r)
	}
	wg.Wait()

	fmt.Println()
	for _, r := range results {
		fmt.Println(r)
	}

	fmt.Println("\nhub routing telemetry (shared cascade-tree restriction):")
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range stats.Hubs {
		fmt.Printf("band %-4s delivered=%-5d dropped=%-3d index matches=%d\n",
			h.Band, h.Delivered, h.Dropped, h.Routed)
	}
}
