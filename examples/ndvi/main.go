// The paper's §3.4 running example, end to end with the query language:
//
//	((f_val((G1 − G2) ÷ (G2 + G1))) ∘ f_UTM) |R
//
// — compute NDVI over the near-infrared and visible bands, stretch it,
// re-project to UTM, and restrict to a region of interest given in UTM
// coordinates. The program shows the parsed and optimized plans (the
// optimizer maps the UTM region back into the source coordinate system
// and pushes it below everything), runs both, compares the work done, and
// writes the result as a PNG.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"geostreams"
	"geostreams/internal/raster"
)

func main() {
	ctx := context.Background()

	// Region of interest around (-121°, 37°), expressed in UTM zone 10.
	ll, err := geostreams.ParseCRS("latlon")
	check(err)
	utm, err := geostreams.ParseCRS("utm:10")
	check(err)
	center, err := geostreams.TransformPoint(ll, utm, geostreams.V2(-121, 37))
	check(err)
	q := fmt.Sprintf(`rselect(
	    reproject(
	        stretch(ndvi(nir, vis), linear, 0, 255),
	        "utm:10"),
	    rect(%.0f, %.0f, %.0f, %.0f))`,
		center.X-50000, center.Y-50000, center.X+50000, center.Y+50000)
	fmt.Println("query:")
	fmt.Println(q)

	run := func(optimize bool) (points int64, img *raster.Image) {
		g := geostreams.NewGroup(ctx)
		scene := geostreams.DefaultScene(42)
		imager, err := geostreams.NewLatLonImager(
			geostreams.R(-122, 36, -120, 38), 192, 144, scene,
			[]string{"vis", "nir"}, geostreams.RowByRow, 1)
		check(err)
		sources, err := imager.Streams(g)
		check(err)
		catalog := map[string]geostreams.Info{
			"vis": imager.Info(imager.Bands[0]),
			"nir": imager.Info(imager.Bands[1]),
		}

		plan, err := geostreams.ParseQuery(q, map[string]bool{"nir": true, "vis": true})
		check(err)
		if optimize {
			plan, err = geostreams.OptimizeQuery(plan, catalog)
			check(err)
			exp, err := geostreams.ExplainQuery(plan, catalog)
			check(err)
			fmt.Println("\noptimized plan (with cost model):")
			fmt.Print(exp)
		}

		out, stats, err := geostreams.BuildQuery(g, plan, sources)
		check(err)
		asm := geostreams.NewAssembler()
		for c := range out.C {
			imgs, err := asm.Add(c)
			check(err)
			if len(imgs) > 0 {
				img = imgs[0]
			}
		}
		imgs, err := asm.Flush()
		check(err)
		if img == nil && len(imgs) > 0 {
			img = imgs[0]
		}
		check(g.Wait())
		for _, st := range stats {
			points += st.PointsIn.Load()
		}
		return points, img
	}

	naivePts, _ := run(false)
	optPts, img := run(true)
	fmt.Printf("\nwork: naive plan processed %d points, optimized %d (%.1fx less)\n",
		naivePts, optPts, float64(naivePts)/float64(optPts))

	if img == nil {
		log.Fatal("no frame produced")
	}
	cm, err := raster.ColormapByName("ndvi")
	check(err)
	f, err := os.Create("ndvi_utm.png")
	check(err)
	defer f.Close()
	check(img.EncodePNG(f, cm, 0, 255))
	fmt.Printf("wrote ndvi_utm.png (%dx%d, UTM zone 10, sector %d)\n",
		img.Lat.W, img.Lat.H, img.T)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
