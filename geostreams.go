// Package geostreams is a data stream management system for streaming
// geospatial image data — a from-scratch Go implementation of the data and
// query model of Gertz, Hart, Rueda, Singhal & Zhang, "A Data and Query
// Model for Streaming Geospatial Image Data" (EDBT 2006; the UC Davis
// GeoStreams project).
//
// A GeoStream is a function G : X → V from a spatio-temporal point lattice
// X = S × T (a regularly spaced spatial grid with an associated coordinate
// system, crossed with logical timestamps) to a value set V. This package
// exposes:
//
//   - the data model: lattices, regions, time sets, coordinate systems
//     (lat/lon, Mercator, UTM, the GEOS geostationary view), chunks, and
//     stream metadata;
//   - the query algebra: stream restrictions (spatial/temporal/value),
//     stream transforms (point-wise and frame-buffered value transforms,
//     zooms, re-projection, rotation), stream compositions
//     (+, −, ×, ÷, sup, inf — NDVI being the canonical derived product),
//     and spatio-temporal aggregates;
//   - a query language with a rule-based optimizer (restriction merging
//     and push-down, including inverse-CRS region mapping below
//     re-projections) and an EXPLAIN facility;
//   - instrument simulators reproducing the three point organizations of
//     the paper's Fig. 1 (image-by-image, row-by-row, point-by-point);
//   - the DSMS server of Fig. 3: HTTP query registration, a shared
//     cascade-tree spatial restriction stage multiplexing one instrument
//     stream to many continuous queries, and PNG delivery.
//
// The quickest route through the API:
//
//	g := geostreams.NewGroup(ctx)
//	im, _ := geostreams.NewLatLonImager(region, 256, 256, scene,
//	        []string{"vis", "nir"}, geostreams.RowByRow, 10)
//	sources, _ := im.Streams(g)
//	plan, _ := geostreams.ParseQuery(`rselect(ndvi(nir, vis), rect(...))`, bands)
//	plan, _ = geostreams.OptimizeQuery(plan, catalog)
//	out, stats, _ := geostreams.BuildQuery(g, plan, sources)
//	... consume out.C ...
//	err := g.Wait()
//
// See examples/ for complete programs and DESIGN.md for the system map.
package geostreams

import (
	"context"

	"geostreams/internal/coord"
	"geostreams/internal/core"
	"geostreams/internal/dsms"
	"geostreams/internal/geom"
	"geostreams/internal/query"
	"geostreams/internal/raster"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
	"geostreams/internal/valueset"
)

// --- Data model --------------------------------------------------------

// Vec2 is a point in the 2-D spatial domain.
type Vec2 = geom.Vec2

// Rect is an axis-aligned rectangle.
type Rect = geom.Rect

// Region is a spatial region of interest (restriction argument).
type Region = geom.Region

// Timestamp is a logical timestamp (scan-sector id or measurement time).
type Timestamp = geom.Timestamp

// Point is a spatio-temporal point x = (s, t).
type Point = geom.Point

// TimeSet is a set of timestamps (temporal restriction argument).
type TimeSet = geom.TimeSet

// Lattice is a regularly spaced point lattice with a geo-transform.
type Lattice = geom.Lattice

// CRS is a coordinate reference system.
type CRS = coord.CRS

// Chunk is one stream element: a grid patch, a point list, or
// end-of-sector punctuation.
type Chunk = stream.Chunk

// Stream is a GeoStream: metadata plus a channel of chunks.
type Stream = stream.Stream

// Info is a stream's static metadata.
type Info = stream.Info

// Stats instruments one operator (points in/out, peak buffered points).
type Stats = stream.Stats

// Group runs the goroutines of a pipeline and collects the first error.
type Group = stream.Group

// Organization is the physical point organization (Fig. 1).
type Organization = stream.Organization

// Point organizations.
const (
	ImageByImage = stream.ImageByImage
	RowByRow     = stream.RowByRow
	PointByPoint = stream.PointByPoint
)

// Gamma is a composition operator (γ ∈ {+, −, ×, ÷, sup, inf}).
type Gamma = valueset.Gamma

// Composition operators.
const (
	Add = valueset.Add
	Sub = valueset.Sub
	Mul = valueset.Mul
	Div = valueset.Div
	Sup = valueset.Sup
	Inf = valueset.Inf
)

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return geom.V2(x, y) }

// R constructs a Rect from two corners in any order.
func R(x0, y0, x1, y1 float64) Rect { return geom.R(x0, y0, x1, y1) }

// RectRegion wraps a Rect as a Region.
func RectRegion(r Rect) Region { return geom.NewRectRegion(r) }

// Disk returns a circular region.
func Disk(cx, cy, radius float64) Region { return geom.Disk(cx, cy, radius) }

// Polygon returns a polygonal region.
func Polygon(verts []Vec2) (Region, error) { return geom.NewPolygonRegion(verts) }

// Interval returns the half-open timestamp interval [start, end).
func Interval(start, end Timestamp) TimeSet { return geom.NewInterval(start, end) }

// NewLattice validates and constructs a lattice.
func NewLattice(x0, y0, dx, dy float64, w, h int) (Lattice, error) {
	return geom.NewLattice(x0, y0, dx, dy, w, h)
}

// ParseCRS resolves a coordinate system name: "latlon", "mercator",
// "utm:<zone>[s]", "geos:<lon>".
func ParseCRS(name string) (CRS, error) { return coord.Parse(name) }

// TransformPoint maps a point between coordinate systems.
func TransformPoint(from, to CRS, v Vec2) (Vec2, error) { return coord.Transform(from, to, v) }

// NewGroup creates a pipeline group bounded by ctx.
func NewGroup(ctx context.Context) *Group { return stream.NewGroup(ctx) }

// Collect drains a stream into a slice (tests, examples).
func Collect(ctx context.Context, s *Stream) ([]*Chunk, error) { return stream.Collect(ctx, s) }

// --- Operators (the §3 algebra) -----------------------------------------

// Restrict applies the spatial restriction G|R.
func Restrict(g *Group, in *Stream, region Region) (*Stream, *Stats, error) {
	return stream.Apply(g, core.SpatialRestrict{Region: region}, in)
}

// RestrictTime applies the temporal restriction G|T.
func RestrictTime(g *Group, in *Stream, times TimeSet) (*Stream, *Stats, error) {
	return stream.Apply(g, core.TemporalRestrict{Times: times}, in)
}

// MapValues applies a point-wise value transform f∘G.
func MapValues(g *Group, in *Stream, fn func(float64) float64, label string) (*Stream, *Stats, error) {
	return stream.Apply(g, core.ValueTransform{Fn: fn, Label: label}, in)
}

// StretchLinear applies the frame-buffered linear contrast stretch onto
// [outMin, outMax].
func StretchLinear(g *Group, in *Stream, outMin, outMax float64) (*Stream, *Stats, error) {
	return stream.Apply(g, core.Stretch{Kind: core.StretchLinear, OutMin: outMin, OutMax: outMax}, in)
}

// ZoomIn increases the lattice resolution k-fold (no buffering).
func ZoomIn(g *Group, in *Stream, k int) (*Stream, *Stats, error) {
	return stream.Apply(g, core.ZoomIn{K: k}, in)
}

// ZoomOut decreases the lattice resolution k-fold (buffers k rows).
func ZoomOut(g *Group, in *Stream, k int) (*Stream, *Stats, error) {
	return stream.Apply(g, core.ZoomOut{K: k}, in)
}

// Reproject re-projects the stream into a new coordinate system with
// bilinear resampling, progressively when the stream carries sector
// metadata.
func Reproject(g *Group, in *Stream, to CRS) (*Stream, *Stats, error) {
	op := core.NewReproject(in.Info.CRS, to, core.Bilinear, in.Info.HasSectorMeta)
	return stream.Apply(g, op, in)
}

// Compose applies the point-wise composition G1 γ G2.
func Compose(g *Group, gamma Gamma, a, b *Stream) (*Stream, *Stats, error) {
	return stream.Apply2(g, core.Compose{Gamma: gamma}, a, b)
}

// NDVI wires the normalized difference vegetation index
// (NIR − VIS)/(NIR + VIS) over two band streams.
func NDVI(g *Group, nir, vis *Stream) (*Stream, []*Stats, error) {
	return core.BuildNDVI(g, nir, vis)
}

// --- Query language -----------------------------------------------------

// QueryPlan is a parsed (and possibly optimized) logical plan.
type QueryPlan = query.Node

// ParseQuery compiles a query string against a set of band names.
func ParseQuery(src string, bands map[string]bool) (QueryPlan, error) {
	return query.Parse(src, bands)
}

// OptimizeQuery applies the §3.4 rewrite rules.
func OptimizeQuery(plan QueryPlan, catalog map[string]Info) (QueryPlan, error) {
	return query.Optimize(plan, catalog)
}

// FuseQuery collapses adjacent point-wise plan stages into single-pass
// fused operators; apply it after OptimizeQuery, before BuildQuery.
func FuseQuery(plan QueryPlan) QueryPlan {
	return query.Fuse(plan)
}

// BuildQuery wires a plan into a running pipeline over the given sources.
func BuildQuery(g *Group, plan QueryPlan, sources map[string]*Stream) (*Stream, []*Stats, error) {
	return query.Build(g, plan, sources)
}

// ExplainQuery renders a plan with per-operator cost predictions.
func ExplainQuery(plan QueryPlan, catalog map[string]Info) (string, error) {
	return query.Explain(plan, catalog)
}

// --- Instrument simulation ----------------------------------------------

// Scene is a correlated multi-band synthetic Earth scene.
type Scene = sat.Scene

// Imager is a simulated frame- or line-scanning instrument.
type Imager = sat.Imager

// LIDARScanner is a simulated point-by-point instrument.
type LIDARScanner = sat.LIDARScanner

// DefaultScene returns a plausible scene seeded deterministically.
func DefaultScene(seed int64) *Scene { return sat.DefaultScene(seed) }

// NewGOESImager simulates a GOES-class imager viewing `region` from the
// geostationary longitude subLon, scanning w×h sectors row-by-row in GEOS
// scan-angle coordinates.
func NewGOESImager(subLon float64, region Rect, w, h int, scene *Scene, bands []string, sectors int) (*Imager, error) {
	return sat.NewGOESImager(subLon, region, w, h, scene, bands, sectors)
}

// NewLatLonImager simulates an instrument scanning directly in geographic
// coordinates (the cheap workload generator).
func NewLatLonImager(region Rect, w, h int, scene *Scene, bands []string, org Organization, sectors int) (*Imager, error) {
	return sat.NewLatLonImager(region, w, h, scene, bands, org, sectors)
}

// --- Raster delivery ------------------------------------------------------

// Image is an assembled georeferenced raster frame.
type Image = raster.Image

// Assembler reassembles stream chunks into whole frames.
type Assembler = raster.Assembler

// NewAssembler builds a frame assembler.
func NewAssembler() *Assembler { return raster.NewAssembler() }

// --- DSMS server ----------------------------------------------------------

// Server is the Fig. 3 stream management system.
type Server = dsms.Server

// ServerClient is the HTTP client for a Server.
type ServerClient = dsms.Client

// DeliveryOptions configure query result rendering.
type DeliveryOptions = dsms.DeliveryOptions

// NewServer creates a DSMS bounded by ctx; attach sources, register
// queries, then call Start.
func NewServer(ctx context.Context) *Server { return dsms.NewServer(ctx) }

// NewServerClient builds a client for a server base URL.
func NewServerClient(baseURL string) *ServerClient { return dsms.NewClient(baseURL) }
