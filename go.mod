module geostreams

go 1.22
