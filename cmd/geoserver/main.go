// Command geoserver runs the GeoStreams DSMS (the paper's Fig. 3
// architecture) over a simulated GOES-class instrument and serves the
// HTTP query API.
//
// Usage:
//
//	geoserver [-addr :8080] [-goes] [-subsat -75]
//	          [-region "-122,36,-120,38"] [-w 256] [-h 192]
//	          [-sectors 0] [-interval 2s] [-seed 42]
//	          [-max-queries 0] [-drain-timeout 10s] [-share] [-cascade]
//	          [-ingest :9090] [-local=false]
//	          [-store-dir /var/lib/geostreams] [-history 4096]
//	          [-trace-sample 64] [-frame-age-slo 0]
//	          [-log-format text|json] [-log-level info] [-debug]
//
// With -sectors 0 the instrument scans forever. -ingest opens a GSP
// listener for remote instrument feeds (cmd/geofeed): each remote band
// mounts as a supervised source, so a network flap shows up as a
// reconnecting hub, not a dead band. -local=false skips the built-in
// simulated imager and serves only wire-fed bands. -max-queries caps
// concurrently registered queries (beyond it POST /queries returns 503
// with a Retry-After hint). On SIGINT/SIGTERM the server drains
// gracefully: registration stops, queued chunks flush to their queries,
// and pipelines get up to -drain-timeout to finish before being
// cancelled. -share (default on) runs common subplans of concurrent
// queries once on shared trunks; -share=false keeps every query fully
// private. -cascade (default on, requires -share) routes pushed-down
// rectangular crops through a per-band shared cascade index: each chunk
// is probed once against every registered query rect instead of scanned
// per query; -cascade=false falls back to one private trunk per distinct
// crop. -trace-sample tunes chunk tracing (1 in N data chunks get a
// full span timeline, visible at GET /queries/{id}/trace; punctuation is
// always traced). -frame-age-slo sets an ingest-to-delivery freshness
// budget: delivered data chunks older than it burn the per-query
// geostreams_frame_age_slo_burn_total counter. -store-dir mounts the
// tiered historical chunk store (§14): every routed chunk is durably
// sequenced into a per-band in-memory ring that spills to an on-disk
// segment log, temporal restrictions over the past execute as store
// scans spliced into live, and push subscribers may redial with
// ?resume=<cursor>. -history sizes the ring in chunks per band; with
// -history alone (no -store-dir) the store is memory-only — resume
// works across the ring's retention, nothing survives a restart.
// -debug mounts net/http/pprof under /debug/pprof/. Try:
//
//	curl localhost:8080/catalog
//	curl -s localhost:8080/explain --get --data-urlencode \
//	    'q=rselect(ndvi(nir, vis), rect(-121.5, 36.5, -120.5, 37.5))'
//	curl -s localhost:8080/queries -d \
//	    '{"query": "stretch(ndvi(nir, vis), linear, 0, 255)", "colormap": "ndvi"}'
//	curl -s localhost:8080/queries/1/frame -o frame.png
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"geostreams/internal/dsms"
	"geostreams/internal/exec"
	"geostreams/internal/geom"
	"geostreams/internal/obs"
	"geostreams/internal/sat"
	"geostreams/internal/store"
	"geostreams/internal/stream"
)

func parseRegion(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("region needs 4 comma-separated numbers, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("bad region component %q: %v", p, err)
		}
		v[i] = f
	}
	return geom.R(v[0], v[1], v[2], v[3]), nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	useGOES := flag.Bool("goes", false, "scan in GEOS satellite-view coordinates (GOES Variable Format analogue)")
	subsat := flag.Float64("subsat", -75, "sub-satellite longitude for -goes")
	regionStr := flag.String("region", "-122,36,-120,38", "scan region lon0,lat0,lon1,lat1")
	w := flag.Int("w", 256, "sector width (points)")
	h := flag.Int("h", 192, "sector height (points)")
	sectors := flag.Int("sectors", 0, "number of scan sectors (0 = unlimited)")
	interval := flag.Duration("interval", 2*time.Second, "time between scan sectors")
	seed := flag.Int64("seed", 42, "scene seed")
	maxQueries := flag.Int("max-queries", 0,
		"admission limit on concurrently registered queries (0 = unlimited; beyond it POST /queries returns 503)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long graceful shutdown waits for query pipelines to drain before cancelling them")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
	shareQueries := flag.Bool("share", true,
		"shared multi-query execution: common subplans run once on shared trunks")
	cascadeRouting := flag.Bool("cascade", true,
		"shared spatial-restriction routing: pushed-down crops register in a per-band cascade index and each chunk is routed once (requires -share)")
	parallelism := flag.Int("parallelism", 0,
		"worker count for data-parallel grid kernels (0 = GOMAXPROCS; overrides GEOSTREAMS_PARALLELISM)")
	ingest := flag.String("ingest", "",
		"GSP ingest listen address for remote instrument feeds (empty = disabled)")
	local := flag.Bool("local", true,
		"run the built-in simulated imager (disable to serve only wire-fed bands)")
	traceSample := flag.Int("trace-sample", 0,
		"chunk-trace sampling interval: 1 in N data chunks (0 = library default; negative disables data tracing)")
	frameAgeSLO := flag.Duration("frame-age-slo", 0,
		"ingest-to-delivery freshness budget; delivered chunks older than this burn the SLO counter (0 = no SLO)")
	storeDir := flag.String("store-dir", "",
		"directory for the historical store's segment logs (empty = no disk tier)")
	authToken := flag.String("auth-token", "",
		"bearer token required on the HTTP API and GSP ingest hellos (empty = auth off)")
	rateLimit := flag.Float64("rate-limit", 0,
		"per-client requests/second on register/poll/subscribe endpoints (0 = off)")
	rateBurst := flag.Float64("rate-limit-burst", 10,
		"per-client burst for -rate-limit")
	history := flag.Int("history", 0,
		"historical ring size in chunks per band (0 = store disabled unless -store-dir is set; low values clamp up to the ring floor)")
	flag.Parse()

	if *parallelism > 0 {
		exec.SetParallelism(*parallelism)
	}

	logger := obs.NewCLILogger(*logFormat, *logLevel).With("component", "geoserver")

	fatal := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	region, err := parseRegion(*regionStr)
	if err != nil {
		fatal("%v", err)
	}
	nSectors := *sectors
	if nSectors <= 0 {
		nSectors = math.MaxInt32 // effectively unlimited
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The server's own lifetime is NOT bounded by the signal context:
	// shutdown must be graceful (drain, then cancel), so the signal only
	// triggers Shutdown below rather than hard-cancelling every pipeline.
	srv := dsms.NewServer(context.Background())
	srv.SetLogger(logger)
	srv.SetDebug(*debug)
	srv.SetMaxQueries(*maxQueries)
	srv.SetSharing(*shareQueries)
	srv.SetCascadeRouting(*cascadeRouting)
	if *traceSample != 0 {
		srv.SetTraceInterval(*traceSample)
	}
	srv.SetFrameAgeSLO(*frameAgeSLO)
	if *authToken != "" {
		srv.SetAuthToken(*authToken)
		logger.Info("edge auth enabled", "edges", "http,ingest")
	}
	if *rateLimit > 0 {
		srv.SetRateLimit(*rateLimit, *rateBurst)
		logger.Info("rate limiting enabled",
			"rate", *rateLimit, "burst", *rateBurst)
	}
	// The store mounts before any source: AddSource attaches each band's
	// history at mount time, so a band that exists before the store would
	// never be sequenced.
	var hist *store.Store
	if *storeDir != "" || *history > 0 {
		hist, err = store.Open(store.Options{
			Dir:        *storeDir,
			RingChunks: *history,
			Logger:     logger.With("component", "store"),
		})
		if err != nil {
			fatal("historical store: %v", err)
		}
		srv.SetStore(hist)
		logger.Info("historical store mounted",
			"dir", *storeDir, "ring_chunks", *history)
	}
	bands := []string{"vis", "nir", "ir"}
	if *local {
		scene := sat.DefaultScene(*seed)
		var im *sat.Imager
		if *useGOES {
			im, err = sat.NewGOESImager(*subsat, region, *w, *h, scene, bands, nSectors)
		} else {
			im, err = sat.NewLatLonImager(region, *w, *h, scene, bands, stream.RowByRow, nSectors)
		}
		if err != nil {
			fatal("instrument: %v", err)
		}
		im.Interval = *interval
		streams, err := im.Streams(srv.Group())
		if err != nil {
			fatal("%v", err)
		}
		for _, band := range bands {
			if err := srv.AddSource(streams[band]); err != nil {
				fatal("%v", err)
			}
		}
	} else if *ingest == "" {
		fatal("-local=false needs -ingest: the server would have no sources at all")
	}
	if *ingest != "" {
		ln, err := net.Listen("tcp", *ingest)
		if err != nil {
			fatal("ingest listener: %v", err)
		}
		go func() {
			if err := srv.ServeIngest(ln); err != nil {
				logger.Error("ingest listener failed", "error", err.Error())
			}
		}()
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the DSMS first (stop admitting, flush queued chunks, wait
		// for pipelines), then close the HTTP listener.
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Warn("drain incomplete, pipelines cancelled", "error", err.Error())
		}
		if hist != nil {
			// After the drain: every routed chunk has been appended, so the
			// close flushes and fsyncs complete segments.
			if err := hist.Close(); err != nil {
				logger.Warn("historical store close", "error", err.Error())
			}
		}
		httpSrv.Shutdown(drainCtx) //nolint:errcheck
	}()

	crs := "latlon"
	if *useGOES {
		crs = fmt.Sprintf("geos:%g", *subsat)
	}
	if *local {
		logger.Info("instrument configured",
			"bands", fmt.Sprintf("%v", bands), "region", region.String(), "crs", crs,
			"sector_w", *w, "sector_h", *h, "interval", interval.String())
	}
	logger.Info("listening", "addr", *addr, "ingest", *ingest, "pprof", *debug)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal("%v", err)
	}
}
