// Command geoquery is the client for a running geoserver: it registers
// continuous queries, fetches result frames as PNG files, polls
// time-series outputs, and inspects server state.
//
// Usage (the subcommand comes first; flags follow it):
//
//	geoquery catalog [-server URL]
//	geoquery explain -q 'ndvi(nir, vis)'
//	geoquery register -q 'stretch(ndvi(nir, vis), linear, 0, 255)' -colormap ndvi
//	geoquery frames -id 1 -n 5 -out ./frames
//	geoquery watch -id 1 -n 5 -out ./frames
//	geoquery series -id 2 -n 10
//	geoquery subscribe -id 1 -n 5 -out ./frames [-window 64] [-resume <cursor>]
//	geoquery trace -id 1 [-n 8]
//	geoquery stats
//	geoquery health
//	geoquery metrics
//	geoquery list
//	geoquery drop -id 1
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"geostreams/internal/dsms"
	"geostreams/internal/raster"
	"geostreams/internal/stream"
	"geostreams/internal/wire"
)

const usage = "usage: geoquery catalog|explain|register|frames|watch|series|subscribe|trace|stats|health|metrics|list|drop [flags]"

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	cmd := os.Args[1]

	fs := flag.NewFlagSet("geoquery "+cmd, flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "geoserver base URL")
	q := fs.String("q", "", "query text (explain, register)")
	colormap := fs.String("colormap", "gray", "colormap for register")
	id := fs.Int64("id", 0, "query id (frames, series, drop)")
	n := fs.Int("n", 3, "how many frames / series polls to fetch")
	out := fs.String("out", ".", "output directory for frames")
	wait := fs.Duration("wait", 10*time.Second, "per-frame wait")
	window := fs.Int("window", 0, "credit window in chunks for subscribe (0 = server default)")
	resume := fs.String("resume", "",
		"resume cursor for subscribe, from a previous run's 'cursor:' line (server needs -store-dir or -history)")
	token := fs.String("token", "",
		"bearer token for servers running with -auth-token")
	fs.Parse(os.Args[2:]) //nolint:errcheck // ExitOnError

	// Unary calls get the client's per-request deadline; NextFrame derives
	// its own from -wait, so no client-wide timeout gymnastics are needed.
	c := dsms.NewClient(*server)
	c.Token = *token

	switch cmd {
	case "catalog":
		bands, err := c.Catalog()
		fatal(err)
		for _, b := range bands {
			fmt.Printf("%-6s crs=%-10s org=%-15s stamping=%-16s sector=%dx%d range=[%g, %g]\n",
				b.Band, b.CRS, b.Organization, b.Stamping, b.SectorW, b.SectorH, b.VMin, b.VMax)
		}
	case "explain":
		requireQ(*q)
		plan, err := c.Explain(*q)
		fatal(err)
		fmt.Print(plan)
	case "register":
		requireQ(*q)
		qi, err := c.Register(*q, *colormap)
		fatal(err)
		fmt.Printf("registered query %d (out band %s, crs %s)\nplan:\n%s",
			qi.ID, qi.OutBand, qi.OutCRS, qi.Plan)
	case "frames":
		requireID(*id)
		fatal(os.MkdirAll(*out, 0o755))
		for i := 0; i < *n; i++ {
			f, ok, err := c.NextFrame(*id, *wait)
			fatal(err)
			if !ok {
				fmt.Println("no more frames")
				return
			}
			name := filepath.Join(*out, fmt.Sprintf("q%d_sector%d.png", *id, f.Sector))
			fatal(os.WriteFile(name, f.PNG, 0o644))
			fmt.Printf("wrote %s (%dx%d, %d bytes)\n", name, f.Width, f.Height, len(f.PNG))
		}
	case "watch":
		requireID(*id)
		fatal(watch(c, *id, *n, *wait, *out))
	case "series":
		requireID(*id)
		next := 0
		for i := 0; i < *n; i++ {
			pts, nx, err := c.Series(*id, next)
			fatal(err)
			next = nx
			for _, p := range pts {
				fmt.Printf("t=%d  (%.4f, %.4f)  value=%g\n", p.T, p.X, p.Y, p.Val)
			}
			if len(pts) == 0 {
				time.Sleep(500 * time.Millisecond)
			}
		}
	case "subscribe":
		requireID(*id)
		fatal(subscribe(c, *id, *n, *window, *out, *colormap, *resume))
	case "trace":
		requireID(*id)
		rep, err := c.Trace(*id, *n)
		fatal(err)
		printTrace(rep)
	case "health":
		healthy, err := c.Healthz()
		if healthy {
			fmt.Println("ok")
			return
		}
		fatal(err)
	case "stats":
		st, err := c.Stats()
		fatal(err)
		fmt.Printf("queries=%d uptime=%.1fs\n", st.Queries, st.UptimeSeconds)
		for _, h := range st.Hubs {
			fmt.Printf("band %-6s subscribers=%d delivered=%d dropped=%d routed=%d unrouted=%d age_p50=%.3fs age_p95=%.3fs\n",
				h.Band, h.Subscribers, h.Delivered, h.Dropped, h.Routed,
				h.Unrouted, h.AgeP50Seconds, h.AgeP95Seconds)
		}
	case "metrics":
		text, err := c.Metrics()
		fatal(err)
		fmt.Print(text)
	case "list":
		qs, err := c.Queries()
		fatal(err)
		for _, qi := range qs {
			fmt.Printf("query %d: %s\n", qi.ID, qi.Query)
			for _, op := range qi.Operators {
				fmt.Printf("  %-45s in=%-10d out=%-10d peak_buffer=%d\n",
					op.Name, op.PointsIn, op.PointsOut, op.PeakBuffer)
			}
		}
	case "drop":
		requireID(*id)
		fatal(c.Deregister(*id))
		fmt.Printf("deregistered query %d\n", *id)
	default:
		fmt.Fprintf(os.Stderr, "geoquery: unknown command %q\n%s\n", cmd, usage)
		os.Exit(2)
	}
}

// watch attaches a WebSocket push subscription to the query's frame
// cache: the server pushes each rendered PNG as it is encoded (one
// encode, shared across every watcher) instead of the frames command's
// poll round-trips. It stops after n frames or when the query ends.
func watch(c *dsms.Client, id int64, n int, wait time.Duration, out string) error {
	w, err := c.Watch(id)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		f, err := w.Next(wait)
		if err == io.EOF {
			fmt.Println("query ended")
			return nil
		}
		if err != nil {
			return err
		}
		name := filepath.Join(out, fmt.Sprintf("q%d_seq%d.png", id, f.Seq))
		if err := os.WriteFile(name, f.PNG, 0o644); err != nil {
			return err
		}
		shed := ""
		if f.Shed > 0 {
			shed = fmt.Sprintf("  [%d frames shed]", f.Shed)
		}
		fmt.Printf("wrote %s (sector %d, %dx%d, %d bytes)%s\n",
			name, f.Sector, f.Width, f.Height, len(f.PNG), shed)
	}
	return nil
}

// subscribe attaches a GSP push subscription to the query and renders
// what arrives: grid output is assembled into sector PNGs client-side
// (the same raster path the server's frame delivery uses), point output
// prints as series lines. It stops after n sectors (grid) or n chunks
// (points), or when the server says bye. It always asks for the resume
// extension; when the server confirms it (historical store mounted),
// every acknowledged sector boundary prints a "cursor: <cursor>" line —
// pass the last one back via -resume to continue a killed subscription
// from that boundary, exactly once, no gap and no duplicate.
func subscribe(c *dsms.Client, id int64, n, window int, out, colormap, resume string) error {
	var sub *wire.Subscription
	var err error
	if resume != "" {
		cur, perr := wire.ParseCursor(resume)
		if perr != nil {
			return fmt.Errorf("bad -resume cursor: %w", perr)
		}
		sub, err = c.SubscribeResume(id, window, cur)
	} else {
		sub, err = c.SubscribeCursors(id, window)
	}
	if err != nil {
		return err
	}
	defer sub.Close()
	fmt.Printf("subscribed to query %d (out band %s, window %d, resume %v)\n",
		id, sub.Info.Band, window, sub.Resumed())

	cm, err := raster.ColormapByName(colormap)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	asm := raster.NewAssembler()
	defer asm.Discard()
	lastCursor := ""
	printCursor := func() {
		if cur, ok := sub.LastCursor(); ok {
			if s := cur.String(); s != lastCursor {
				fmt.Printf("cursor: %s\n", s)
				lastCursor = s
			}
		}
	}
	got := 0
	for got < n {
		ch, err := sub.Next()
		if err == io.EOF {
			printCursor()
			fmt.Println("server ended the stream")
			return nil
		}
		if err != nil {
			return err
		}
		printCursor()
		if ch.Kind == stream.KindPoints {
			for _, pv := range ch.Points {
				fmt.Printf("t=%d  (%.4f, %.4f)  value=%g\n", pv.P.T, pv.P.S.X, pv.P.S.Y, pv.V)
			}
			got++
			continue
		}
		imgs, err := asm.Add(ch)
		if err != nil {
			return err
		}
		for _, img := range imgs {
			var buf bytes.Buffer
			if err := img.EncodePNG(&buf, cm, sub.Info.VMin, sub.Info.VMax); err != nil {
				return err
			}
			name := filepath.Join(out, fmt.Sprintf("q%d_sector%d.png", id, img.T))
			if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%dx%d, %d bytes)\n", name, img.Lat.W, img.Lat.H, buf.Len())
			img.Recycle()
			got++
		}
	}
	return nil
}

// printTrace renders GET /queries/{id}/trace as indented timelines —
// one block per sampled chunk, one line per stage crossing with its
// queue-wait gap — followed by the per-stage latency breakdown.
func printTrace(rep dsms.TraceReport) {
	fmt.Printf("query %d: %d spans recorded (%d displaced), sampling 1/%d data chunks\n",
		rep.Query, rep.SpansTotal, rep.SpansDropped, rep.SampleInterval)
	if slo := rep.FrameAgeSLO; slo != nil {
		fmt.Printf("frame-age SLO: budget %.3fs, burned %d\n", slo.BudgetSeconds, slo.Burn)
	}
	for _, tr := range rep.Traces {
		kind := "data"
		if tr.Punct {
			kind = "punct"
		}
		fmt.Printf("\ntrace %s  t=%d  %s\n", tr.Trace, tr.T, kind)
		for _, sp := range tr.Spans {
			gap := ""
			if sp.GapUS > 0 {
				gap = fmt.Sprintf("  +%s wait", us(sp.GapUS))
			}
			op := sp.Op
			if op != "" {
				op = " " + op
			}
			fmt.Printf("  %-14s%-22s %8s%s\n", sp.Stage, op, us(sp.DurUS), gap)
		}
	}
	if len(rep.Stages) == 0 {
		return
	}
	stages := make([]string, 0, len(rep.Stages))
	for name := range rep.Stages {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	fmt.Printf("\n%-14s %6s %12s %12s\n", "stage", "count", "p50", "p99")
	for _, name := range stages {
		st := rep.Stages[name]
		fmt.Printf("%-14s %6d %12s %12s\n", name, st.Count,
			us(int64(st.P50Seconds*1e6)), us(int64(st.P99Seconds*1e6)))
	}
}

// us pretty-prints a microsecond count.
func us(v int64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.2fs", float64(v)/1e6)
	}
	if v >= 1e3 {
		return fmt.Sprintf("%.2fms", float64(v)/1e3)
	}
	return fmt.Sprintf("%dµs", v)
}

func fatal(err error) {
	if err != nil {
		log.Fatalf("geoquery: %v", err)
	}
}

func requireQ(q string) {
	if q == "" {
		log.Fatal("geoquery: -q is required")
	}
}

func requireID(id int64) {
	if id == 0 {
		log.Fatal("geoquery: -id is required")
	}
}
