// Command benchgate compares a `geobench -json` snapshot against a
// recorded baseline snapshot and fails when a watched hot-path metric
// regresses past a budget. CI runs it after the bench-smoke job so a PR
// that quietly gives back the block-vectorized kernel win (BENCH_PR7.json
// vs BENCH_PR6.json, DESIGN.md §12) fails loudly instead of landing.
//
// Usage:
//
//	benchgate -baseline BENCH_PR6.json -current snap.json \
//	          [-exp E-O1] [-suffix _ns_per_point] [-max-regress-pct 10]
//
// Every metric of the chosen experiment whose name carries the suffix and
// appears in both snapshots is compared; lower is better. A metric only in
// one snapshot is reported and skipped (experiments grow columns between
// PRs). Exit status 1 on any regression beyond the budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// snapshot is the slice of the geobench -json document benchgate reads.
type snapshot struct {
	Experiments []struct {
		ID      string             `json:"id"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"experiments"`
}

func load(path, exp string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, e := range s.Experiments {
		if e.ID == exp {
			return e.Metrics, nil
		}
	}
	return nil, fmt.Errorf("%s: no experiment %q in snapshot", path, exp)
}

func main() {
	baseline := flag.String("baseline", "", "recorded baseline snapshot (e.g. BENCH_PR6.json)")
	current := flag.String("current", "", "freshly measured snapshot to gate")
	exp := flag.String("exp", "E-O1", "experiment id to compare")
	suffix := flag.String("suffix", "_ns_per_point", "compare metrics whose name ends with this (lower is better)")
	maxRegress := flag.Float64("max-regress-pct", 10, "fail when current exceeds baseline by more than this percentage")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baseline, *exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current, *exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if strings.HasSuffix(name, *suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s has no %q metrics for %s\n",
			*baseline, *suffix, *exp)
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("SKIP %-44s not in current snapshot\n", name)
			continue
		}
		if b <= 0 {
			fmt.Printf("SKIP %-44s non-positive baseline %g\n", name, b)
			continue
		}
		deltaPct := (c - b) / b * 100
		verdict := "ok"
		if deltaPct > *maxRegress {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-4s %-44s baseline %8.3f  current %8.3f  %+7.1f%%\n",
			verdict, name, b, c, deltaPct)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond %.0f%% budget vs %s\n",
			*maxRegress, *baseline)
		os.Exit(1)
	}
}
