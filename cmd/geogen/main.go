// Command geogen renders synthetic instrument data to PNG files without a
// server — useful for inspecting the simulated scene, the band physics,
// and derived NDVI.
//
// Usage:
//
//	geogen [-out ./frames] [-region "-122,36,-120,38"] [-w 512] [-h 384]
//	       [-sectors 2] [-seed 42] [-bands vis,nir,ir] [-ndvi]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"geostreams/internal/core"
	"geostreams/internal/geom"
	"geostreams/internal/raster"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
)

func main() {
	out := flag.String("out", ".", "output directory")
	regionStr := flag.String("region", "-122,36,-120,38", "scan region lon0,lat0,lon1,lat1")
	w := flag.Int("w", 512, "sector width")
	h := flag.Int("h", 384, "sector height")
	sectors := flag.Int("sectors", 2, "sectors to render")
	seed := flag.Int64("seed", 42, "scene seed")
	bandsStr := flag.String("bands", "vis,nir,ir", "bands to render")
	ndvi := flag.Bool("ndvi", true, "also render NDVI from nir and vis")
	flag.Parse()

	var v [4]float64
	parts := strings.Split(*regionStr, ",")
	if len(parts) != 4 {
		log.Fatalf("geogen: bad region %q", *regionStr)
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("geogen: bad region component %q", p)
		}
		v[i] = f
	}
	region := geom.R(v[0], v[1], v[2], v[3])
	bands := strings.Split(*bandsStr, ",")

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("geogen: %v", err)
	}
	scene := sat.DefaultScene(*seed)
	im, err := sat.NewLatLonImager(region, *w, *h, scene, bands, stream.RowByRow, *sectors)
	if err != nil {
		log.Fatalf("geogen: %v", err)
	}

	g := stream.NewGroup(context.Background())
	streams, err := im.Streams(g)
	if err != nil {
		log.Fatalf("geogen: %v", err)
	}

	// Render each band through a linear stretch; derive NDVI if asked.
	outputs := map[string]*stream.Stream{}
	for _, band := range bands {
		src := streams[band]
		if (band == "nir" || band == "vis") && *ndvi {
			tees := stream.Tee(g, src, 2)
			src = tees[0]
			streams[band+"_ndvi"] = tees[1]
		}
		s, _, err := stream.Apply(g, core.Stretch{Kind: core.StretchLinear, OutMin: 0, OutMax: 255}, src)
		if err != nil {
			log.Fatalf("geogen: %v", err)
		}
		outputs[band] = s
	}
	if *ndvi {
		nir, okN := streams["nir_ndvi"]
		vis, okV := streams["vis_ndvi"]
		if okN && okV {
			s, _, err := core.BuildNDVI(g, nir, vis)
			if err != nil {
				log.Fatalf("geogen: %v", err)
			}
			outputs["ndvi"] = s
		}
	}

	done := make(chan error, len(outputs))
	for name, s := range outputs {
		name, s := name, s
		go func() { done <- render(*out, name, s) }()
	}
	for range outputs {
		if err := <-done; err != nil {
			log.Fatalf("geogen: %v", err)
		}
	}
	if err := g.Wait(); err != nil {
		log.Fatalf("geogen: %v", err)
	}
}

// render assembles one product stream into PNG files.
func render(dir, name string, s *stream.Stream) error {
	cmName := "gray"
	vmin, vmax := s.Info.VMin, s.Info.VMax
	if name == "ndvi" {
		cmName, vmin, vmax = "ndvi", -1, 1
	}
	cm, err := raster.ColormapByName(cmName)
	if err != nil {
		return err
	}
	asm := raster.NewAssembler()
	write := func(img *raster.Image) error {
		path := filepath.Join(dir, fmt.Sprintf("%s_sector%d.png", name, img.T))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := img.EncodePNG(f, cm, vmin, vmax); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%dx%d)\n", path, img.Lat.W, img.Lat.H)
		return nil
	}
	for c := range s.C {
		imgs, err := asm.Add(c)
		if err != nil {
			return err
		}
		for _, img := range imgs {
			if err := write(img); err != nil {
				return err
			}
		}
	}
	imgs, err := asm.Flush()
	if err != nil {
		return err
	}
	for _, img := range imgs {
		if err := write(img); err != nil {
			return err
		}
	}
	return nil
}
