// Command geobench runs the experiment suite that reproduces the paper's
// evaluation claims and prints the result tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	geobench [-scale quick|default] [-exp E1,E5,F3] [-w N] [-h N] [-sectors N]
//	         [-parallelism N] [-json] [-cpuprofile FILE]
//
// With -json stdout carries exactly one machine-readable JSON snapshot —
// the config, every table (rows plus its metrics map, e.g. the F3
// frame-latency and delivery-freshness percentiles), the execution-engine
// counters, and the total wall time — while the rendered tables move to
// stderr, so `geobench -json > snap.json` is directly consumable by CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"geostreams/internal/bench"
	"geostreams/internal/exec"
)

// snapshot is the -json output document.
type snapshot struct {
	Config       bench.Config   `json:"config"`
	Experiments  []*bench.Table `json:"experiments"`
	Failed       []string       `json:"failed,omitempty"`
	Exec         exec.Stats     `json:"exec"`
	TotalSeconds float64        `json:"total_seconds"`
}

func main() {
	scale := flag.String("scale", "default", "workload scale: quick or default")
	expList := flag.String("exp", "all", "comma-separated experiment ids (E1..E9, F3, E-F1, E-S1, A1..A3, P1) or 'all'")
	w := flag.Int("w", 0, "override sector width (points)")
	h := flag.Int("h", 0, "override sector height (points)")
	sectors := flag.Int("sectors", 0, "override sector count")
	jsonOut := flag.Bool("json", false, "emit a JSON metrics snapshot on stdout (tables go to stderr)")
	parallelism := flag.Int("parallelism", 0,
		"worker count for data-parallel grid kernels (0 = GOMAXPROCS; overrides GEOSTREAMS_PARALLELISM)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole suite to this file")
	flag.Parse()

	if *parallelism > 0 {
		exec.SetParallelism(*parallelism)
	}
	// stopProfile is safe to call on every exit path (os.Exit skips
	// defers); it is a no-op until -cpuprofile starts a profile.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
			os.Exit(1)
		}
		var stopped bool
		stopProfile = func() {
			if !stopped {
				stopped = true
				pprof.StopCPUProfile()
				f.Close()
			}
		}
		defer stopProfile()
	}
	// Human-readable output goes to stdout normally, to stderr under -json
	// so stdout is pure JSON.
	var tw io.Writer = os.Stdout
	if *jsonOut {
		tw = os.Stderr
	}

	cfg := bench.Default
	if *scale == "quick" {
		cfg = bench.Quick
	} else if *scale != "default" {
		fmt.Fprintf(os.Stderr, "geobench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *w > 0 {
		cfg.W = *w
	}
	if *h > 0 {
		cfg.H = *h
	}
	if *sectors > 0 {
		cfg.Sectors = *sectors
	}

	want := map[string]bool{}
	runAll := *expList == "all"
	if !runAll {
		for _, id := range strings.Split(*expList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	fmt.Fprintf(tw, "GeoStreams experiment suite — sector %dx%d (%d pts), %d sectors\n\n",
		cfg.W, cfg.H, cfg.Frame(), cfg.Sectors)
	snap := snapshot{Config: cfg}
	suiteStart := time.Now()
	for _, e := range bench.AllWithAblations() {
		if !runAll && !want[strings.ToUpper(e.ID)] {
			continue
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n\n", e.ID, err)
			snap.Failed = append(snap.Failed, e.ID)
			continue
		}
		tbl.SetMetric("wall_seconds", time.Since(start).Seconds())
		snap.Experiments = append(snap.Experiments, tbl)
		tbl.Render(tw)
		fmt.Fprintf(tw, "  (%s in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	snap.Exec = exec.Snapshot()
	snap.TotalSeconds = time.Since(suiteStart).Seconds()
	stopProfile()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
			os.Exit(1)
		}
	}
	if len(snap.Failed) > 0 {
		os.Exit(1)
	}
}
