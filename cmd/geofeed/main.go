// Command geofeed streams a simulated instrument to a geoserver's GSP
// ingest listener (geoserver -ingest). Each band of the instrument
// becomes one wire connection, framed and CRC-protected by the GSP
// protocol (package wire); a dropped connection is redialled with
// backoff and the in-flight chunk resent, so the server's supervised
// source sees a network flap, not data loss.
//
// Usage:
//
//	geofeed -server localhost:9090
//	        [-mode latlon|goes|lidar] [-subsat -75]
//	        [-region "-122,36,-120,38"] [-w 256] [-h 192]
//	        [-bands vis,nir,ir] [-org row|image]
//	        [-sectors 0] [-interval 2s] [-seed 42]
//	        [-points 64] [-chunks 0] [-trace=false]
//	        [-log-format text|json] [-log-level info]
//
// With -sectors 0 (or -chunks 0 for lidar) the instrument runs until
// interrupted. -trace (default on) offers the GSP trace extension on the
// hello: when the server accepts, sampled chunks are stamped with a
// trace ID here at the instrument, so the server's span timelines
// (GET /queries/{id}/trace) start at true ingest. Old servers never ack
// and the wire format stays bit-identical. Try:
//
//	geoserver -addr :8080 -ingest :9090 -local=false &
//	geofeed -server localhost:9090 -interval 100ms
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flag"

	"geostreams/internal/geom"
	"geostreams/internal/obs"
	"geostreams/internal/obs/trace"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
	"geostreams/internal/wire"
)

func parseRegion(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("region needs 4 comma-separated numbers, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &v[i]); err != nil {
			return geom.Rect{}, fmt.Errorf("bad region component %q: %v", p, err)
		}
	}
	return geom.R(v[0], v[1], v[2], v[3]), nil
}

func main() {
	server := flag.String("server", "localhost:9090", "geoserver GSP ingest address (host:port)")
	mode := flag.String("mode", "latlon", "instrument simulator: latlon, goes, or lidar")
	subsat := flag.Float64("subsat", -75, "sub-satellite longitude for -mode goes")
	regionStr := flag.String("region", "-122,36,-120,38", "scan region lon0,lat0,lon1,lat1")
	w := flag.Int("w", 256, "sector width (points)")
	h := flag.Int("h", 192, "sector height (points)")
	bandsStr := flag.String("bands", "vis,nir,ir", "comma-separated band names")
	orgStr := flag.String("org", "row", "stream organization for -mode latlon: row or image")
	sectors := flag.Int("sectors", 0, "number of scan sectors (0 = unlimited)")
	interval := flag.Duration("interval", 2*time.Second, "time between scan sectors")
	seed := flag.Int64("seed", 42, "scene seed")
	points := flag.Int("points", 64, "points per chunk for -mode lidar")
	chunks := flag.Int("chunks", 0, "chunks per band for -mode lidar (0 = unlimited)")
	heartbeat := flag.Duration("heartbeat", wire.DefaultHeartbeat, "keep-alive interval while idle")
	traced := flag.Bool("trace", true,
		"offer the GSP trace extension: stamp sampled chunks at the instrument so server timelines start here")
	token := flag.String("token", "",
		"bearer token for servers running with -auth-token")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := obs.NewCLILogger(*logFormat, *logLevel).With("component", "geofeed")
	fatal := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	region, err := parseRegion(*regionStr)
	if err != nil {
		fatal("%v", err)
	}
	bands := strings.Split(*bandsStr, ",")
	for i := range bands {
		bands[i] = strings.TrimSpace(bands[i])
	}
	nSectors := *sectors
	if nSectors <= 0 {
		nSectors = math.MaxInt32
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g := stream.NewGroup(ctx)

	var streams map[string]*stream.Stream
	switch *mode {
	case "latlon", "goes":
		scene := sat.DefaultScene(*seed)
		var im *sat.Imager
		if *mode == "goes" {
			im, err = sat.NewGOESImager(*subsat, region, *w, *h, scene, bands, nSectors)
		} else {
			org := stream.RowByRow
			if *orgStr == "image" {
				org = stream.ImageByImage
			}
			im, err = sat.NewLatLonImager(region, *w, *h, scene, bands, org, nSectors)
		}
		if err != nil {
			fatal("instrument: %v", err)
		}
		im.Interval = *interval
		streams, err = im.Streams(g)
	case "lidar":
		nChunks := *chunks
		if nChunks <= 0 {
			nChunks = math.MaxInt32
		}
		bs := make([]sat.Band, len(bands))
		scene := sat.DefaultScene(*seed)
		for i, name := range bands {
			bs[i] = sat.Band{Name: name, Field: scene.BandField(name)}
		}
		l := &sat.LIDARScanner{
			Name: "geofeed-lidar", Region: region, Bands: bs,
			PointsPerChunk: *points, NumChunks: nChunks, Seed: *seed,
		}
		streams, err = l.Streams(g)
	default:
		fatal("unknown -mode %q (want latlon, goes, or lidar)", *mode)
	}
	if err != nil {
		fatal("%v", err)
	}

	opts := wire.FeedOptions{Heartbeat: *heartbeat, Token: *token}
	if *traced {
		opts.Tracer = trace.New(trace.DefaultInterval, trace.DefaultRingSpans)
	}
	stats := make(map[string]*wire.FeedStats, len(bands))
	for _, band := range bands {
		src, ok := streams[band]
		if !ok {
			fatal("instrument produced no stream for band %q", band)
		}
		st := &wire.FeedStats{}
		stats[band] = st
		log := logger.With("band", band)
		g.Go(func(ctx context.Context) error {
			log.Info("feeding", "server", *server)
			err := wire.FeedStream(ctx, *server, src, opts, st)
			if err != nil && ctx.Err() == nil {
				log.Error("feed failed", "error", err.Error(),
					"chunks", st.Chunks.Load(), "redials", st.Redials.Load())
				return err
			}
			log.Info("feed finished",
				"chunks", st.Chunks.Load(), "redials", st.Redials.Load(),
				"traced", st.Traced.Load())
			return nil
		})
	}

	logger.Info("instrument configured", "mode", *mode,
		"bands", fmt.Sprintf("%v", bands), "region", region.String(),
		"interval", interval.String())
	if err := g.Wait(); err != nil {
		fatal("%v", err)
	}
	total := int64(0)
	for _, st := range stats {
		total += st.Chunks.Load()
	}
	logger.Info("done", "chunks", total)
}
