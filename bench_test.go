// Benchmarks, one group per experiment of the reproduction (see DESIGN.md
// §4 and EXPERIMENTS.md). Each BenchmarkE*/BenchmarkF3 target exercises
// the operator(s) behind the corresponding experiment table at a fixed
// workload; cmd/geobench prints the full tables.
package geostreams_test

import (
	"context"
	"sync"
	"testing"

	"geostreams/internal/bench"
	"geostreams/internal/cascade"
	"geostreams/internal/coord"
	"geostreams/internal/core"
	"geostreams/internal/geom"
	"geostreams/internal/sat"
	"geostreams/internal/stream"
	"geostreams/internal/valueset"
)

// Workload: a 128x96 sector, 2 sectors, two bands, pre-rendered once.
var (
	wlOnce    sync.Once
	wlInfoRow stream.Info
	wlRowsVis []*stream.Chunk
	wlRowsNir []*stream.Chunk
	wlInfoImg stream.Info
	wlImg     []*stream.Chunk
	wlRegion  = geom.R(-122, 36, -120, 38)
)

func workload(b *testing.B) {
	b.Helper()
	wlOnce.Do(func() {
		scene := sat.DefaultScene(1)
		mk := func(org stream.Organization, band string) (stream.Info, []*stream.Chunk) {
			im, err := sat.NewLatLonImager(wlRegion, 128, 96, scene,
				[]string{"vis", "nir"}, org, 2)
			if err != nil {
				panic(err)
			}
			g := stream.NewGroup(context.Background())
			streams, err := im.Streams(g)
			if err != nil {
				panic(err)
			}
			other := "nir"
			if band == "nir" {
				other = "vis"
			}
			go stream.Drain(context.Background(), streams[other]) //nolint:errcheck
			chunks, err := stream.Collect(context.Background(), streams[band])
			if err != nil {
				panic(err)
			}
			if err := g.Wait(); err != nil {
				panic(err)
			}
			idx := 0
			if band == "nir" {
				idx = 1
			}
			return im.Info(im.Bands[idx]), chunks
		}
		wlInfoRow, wlRowsVis = mk(stream.RowByRow, "vis")
		_, wlRowsNir = mk(stream.RowByRow, "nir")
		wlInfoImg, wlImg = mk(stream.ImageByImage, "vis")
	})
}

func points(chunks []*stream.Chunk) int64 {
	var n int64
	for _, c := range chunks {
		n += int64(c.NumPoints())
	}
	return n
}

// runUnary replays the workload through op once.
func runUnary(b *testing.B, op stream.Operator, info stream.Info, chunks []*stream.Chunk) {
	b.Helper()
	g := stream.NewGroup(context.Background())
	src := stream.FromChunks(g, info, chunks)
	out, _, err := stream.Apply(g, op, src)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := stream.Drain(context.Background(), out); err != nil {
		b.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		b.Fatal(err)
	}
}

func benchUnary(b *testing.B, mkOp func() stream.Operator, info stream.Info, chunks []*stream.Chunk) {
	b.Helper()
	pts := points(chunks)
	b.SetBytes(pts * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runUnary(b, mkOp(), info, chunks)
	}
	b.ReportMetric(float64(pts), "points/op")
}

// --- E1: ingest ---------------------------------------------------------

func BenchmarkE1_IngestRowByRow(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.SpatialRestrict{Region: geom.WorldRegion{}}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE1_IngestImageByImage(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.SpatialRestrict{Region: geom.WorldRegion{}}
	}, wlInfoImg, wlImg)
}

func BenchmarkE1_IngestPointByPoint(b *testing.B) {
	scene := sat.DefaultScene(2)
	l := &sat.LIDARScanner{
		Name: "lidar", Region: wlRegion,
		Bands:          []sat.Band{{Name: "z", Field: scene.BandField(sat.BandVIS)}},
		PointsPerChunk: 256, NumChunks: 64, Seed: 5,
	}
	b.SetBytes(256 * 64 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := stream.NewGroup(context.Background())
		streams, err := l.Streams(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := stream.Drain(context.Background(), streams["z"]); err != nil {
			b.Fatal(err)
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: restrictions -----------------------------------------------------

func BenchmarkE2_SpatialRestriction(b *testing.B) {
	workload(b)
	region := geom.NewRectRegion(geom.R(-121.7, 36.3, -120.3, 37.7))
	benchUnary(b, func() stream.Operator {
		return core.SpatialRestrict{Region: region}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE2_TemporalRestriction(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.TemporalRestrict{Times: geom.NewInterval(0, 1)}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE2_ValueRestriction(b *testing.B) {
	workload(b)
	rng, err := valueset.NewRange(100, 800)
	if err != nil {
		b.Fatal(err)
	}
	benchUnary(b, func() stream.Operator {
		return core.ValueRestrict{Values: rng}
	}, wlInfoRow, wlRowsVis)
}

// --- E3: value transforms ---------------------------------------------------

func BenchmarkE3_MapPointwise(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.ValueTransform{Fn: func(v float64) float64 { return v * 0.25 },
			Block: func(dst, src []float64) {
				for i, v := range src {
					dst[i] = v * 0.25
				}
			}, Label: "scale"}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE3_StretchLinear(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.Stretch{Kind: core.StretchLinear, OutMin: 0, OutMax: 255}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE3_StretchEqualize(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return core.Stretch{Kind: core.StretchEqualize, OutMin: 0, OutMax: 255}
	}, wlInfoRow, wlRowsVis)
}

// --- E4: zooms --------------------------------------------------------------

func BenchmarkE4_ZoomIn2(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator { return core.ZoomIn{K: 2} }, wlInfoRow, wlRowsVis)
}

func BenchmarkE4_ZoomOut4(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator { return core.ZoomOut{K: 4} }, wlInfoRow, wlRowsVis)
}

// --- E5: re-projection --------------------------------------------------------

func benchReproject(b *testing.B, progressive bool) {
	scene := sat.DefaultScene(3)
	im, err := sat.NewGOESImager(-75, wlRegion, 96, 72, scene, []string{"vis"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	g0 := stream.NewGroup(context.Background())
	streams, err := im.Streams(g0)
	if err != nil {
		b.Fatal(err)
	}
	chunks, err := stream.Collect(context.Background(), streams["vis"])
	if err != nil {
		b.Fatal(err)
	}
	if err := g0.Wait(); err != nil {
		b.Fatal(err)
	}
	info := im.Info(im.Bands[0])
	b.SetBytes(points(chunks) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runUnary(b, core.NewReproject(info.CRS, coord.LatLon{}, core.Bilinear, progressive), info, chunks)
	}
}

func BenchmarkE5_ReprojectBlocking(b *testing.B)    { benchReproject(b, false) }
func BenchmarkE5_ReprojectProgressive(b *testing.B) { benchReproject(b, true) }

// --- E6: composition -----------------------------------------------------------

func benchCompose(b *testing.B, aInfo, bInfo stream.Info, ac, bc []*stream.Chunk) {
	b.Helper()
	b.SetBytes(points(ac) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := stream.NewGroup(context.Background())
		as := stream.FromChunks(g, aInfo, ac)
		bs := stream.FromChunks(g, bInfo, bc)
		out, _, err := stream.Apply2(g, core.Compose{Gamma: valueset.Sub}, as, bs)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := stream.Drain(context.Background(), out); err != nil {
			b.Fatal(err)
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_ComposeRowByRow(b *testing.B) {
	workload(b)
	nirInfo := wlInfoRow
	nirInfo.Band = "nir"
	benchCompose(b, nirInfo, wlInfoRow, wlRowsNir, wlRowsVis)
}

// --- E7: optimizer -----------------------------------------------------------

func benchQuery(b *testing.B, optimize bool) {
	q := "rselect(stretch(ndvi(nir, vis), linear, 0, 255), rect(-121.2, 36.8, -120.8, 37.2))"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := stream.NewGroup(context.Background())
		scene := sat.DefaultScene(1)
		im, err := sat.NewLatLonImager(wlRegion, 128, 96, scene,
			[]string{"nir", "vis"}, stream.RowByRow, 2)
		if err != nil {
			b.Fatal(err)
		}
		sources, err := im.Streams(g)
		if err != nil {
			b.Fatal(err)
		}
		catalog := map[string]stream.Info{
			"nir": im.Info(im.Bands[0]), "vis": im.Info(im.Bands[1]),
		}
		plan, err := queryParse(q)
		if err != nil {
			b.Fatal(err)
		}
		if optimize {
			if plan, err = queryOptimize(plan, catalog); err != nil {
				b.Fatal(err)
			}
		}
		out, _, err := queryBuild(g, plan, sources)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := stream.Drain(context.Background(), out); err != nil {
			b.Fatal(err)
		}
		if err := g.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_QueryNaive(b *testing.B)     { benchQuery(b, false) }
func BenchmarkE7_QueryOptimized(b *testing.B) { benchQuery(b, true) }

// --- E8: cascade tree ----------------------------------------------------------

func benchIndex(b *testing.B, mk func() cascade.Index, n int) {
	idx := mk()
	for i := 0; i < n; i++ {
		x := float64(i%64) / 64 * 2
		y := float64(i/64%64) / 64 * 2
		idx.Insert(cascade.QueryID(i), geom.R(-122+x, 36+y, -121.8+x, 36.2+y))
	}
	var out []cascade.QueryID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.V2(-121+float64(i%100)/100, 36.5+float64(i%97)/97)
		out = idx.Stab(p, out[:0])
	}
}

func BenchmarkE8_StabNaive1024(b *testing.B) {
	benchIndex(b, func() cascade.Index { return cascade.NewNaive() }, 1024)
}

func BenchmarkE8_StabGrid1024(b *testing.B) {
	benchIndex(b, func() cascade.Index {
		g, err := cascade.NewGrid(wlRegion, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}, 1024)
}

func BenchmarkE8_StabTree1024(b *testing.B) {
	benchIndex(b, func() cascade.Index { return cascade.NewTree() }, 1024)
}

// --- E9: aggregates ---------------------------------------------------------------

func BenchmarkE9_TemporalAggregateW8(b *testing.B) {
	workload(b)
	benchUnary(b, func() stream.Operator {
		return &core.TemporalAggregate{Fn: core.AggMean, Window: 8}
	}, wlInfoRow, wlRowsVis)
}

func BenchmarkE9_RegionalAggregate(b *testing.B) {
	workload(b)
	region := geom.NewRectRegion(geom.R(-121.5, 36.5, -120.5, 37.5))
	benchUnary(b, func() stream.Operator {
		return core.RegionalAggregate{Fn: core.AggMean, Region: region}
	}, wlInfoRow, wlRowsVis)
}

// --- F3: end to end ------------------------------------------------------------------

func BenchmarkF3_EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.F3EndToEnd(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-F1: degradation under faults --------------------------------------------------

func BenchmarkEF1_Degradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.EF1Degradation(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}
