package geostreams_test

import (
	"geostreams/internal/query"
	"geostreams/internal/stream"
)

// Thin aliases keeping bench_test.go readable.

func queryParse(q string) (query.Node, error) {
	return query.Parse(q, map[string]bool{"nir": true, "vis": true, "ir": true})
}

func queryOptimize(n query.Node, catalog map[string]stream.Info) (query.Node, error) {
	return query.Optimize(n, catalog)
}

func queryBuild(g *stream.Group, n query.Node, sources map[string]*stream.Stream) (*stream.Stream, []*stream.Stats, error) {
	return query.Build(g, n, sources)
}
