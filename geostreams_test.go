// Tests of the public facade: every exported helper must be exercised
// through the package path downstream users would import.
package geostreams_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"geostreams"
)

func TestFacadeGeometryHelpers(t *testing.T) {
	r := geostreams.R(3, 4, 1, 2)
	if r.MinX != 1 || r.MaxY != 4 {
		t.Fatalf("R = %+v", r)
	}
	if !geostreams.RectRegion(r).Contains(geostreams.V2(2, 3)) {
		t.Fatal("rect region wrong")
	}
	if !geostreams.Disk(0, 0, 2).Contains(geostreams.V2(1, 1)) {
		t.Fatal("disk wrong")
	}
	poly, err := geostreams.Polygon([]geostreams.Vec2{
		geostreams.V2(0, 0), geostreams.V2(4, 0), geostreams.V2(2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Contains(geostreams.V2(2, 1)) {
		t.Fatal("polygon wrong")
	}
	if !geostreams.Interval(2, 5).Contains(3) || geostreams.Interval(2, 5).Contains(5) {
		t.Fatal("interval wrong")
	}
	lat, err := geostreams.NewLattice(0, 10, 1, -1, 11, 11)
	if err != nil || lat.NumPoints() != 121 {
		t.Fatalf("lattice: %v", err)
	}
}

func TestFacadeCRS(t *testing.T) {
	ll, err := geostreams.ParseCRS("latlon")
	if err != nil {
		t.Fatal(err)
	}
	utm, err := geostreams.ParseCRS("utm:10")
	if err != nil {
		t.Fatal(err)
	}
	p, err := geostreams.TransformPoint(ll, utm, geostreams.V2(-123, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-500000) > 1e-6 {
		t.Fatalf("central meridian easting = %g", p.X)
	}
	if _, err := geostreams.ParseCRS("bogus"); err == nil {
		t.Fatal("bogus CRS must fail")
	}
}

// facadePipeline builds the standard two-band workload via the facade.
func facadePipeline(t *testing.T, g *geostreams.Group, sectors int) map[string]*geostreams.Stream {
	t.Helper()
	scene := geostreams.DefaultScene(5)
	im, err := geostreams.NewLatLonImager(geostreams.R(-122, 36, -120, 38),
		32, 24, scene, []string{"vis", "nir"}, geostreams.RowByRow, sectors)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	return bands
}

func TestFacadeOperators(t *testing.T) {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)
	bands := facadePipeline(t, g, 1)

	ndvi, stats, err := geostreams.NDVI(g, bands["nir"], bands["vis"])
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("ndvi stats = %d", len(stats))
	}
	restricted, _, err := geostreams.Restrict(g, ndvi,
		geostreams.RectRegion(geostreams.R(-121.5, 36.5, -120.5, 37.5)))
	if err != nil {
		t.Fatal(err)
	}
	timed, _, err := geostreams.RestrictTime(g, restricted, geostreams.Interval(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	mapped, _, err := geostreams.MapValues(g, timed,
		func(v float64) float64 { return v * 100 }, "x100")
	if err != nil {
		t.Fatal(err)
	}
	stretched, _, err := geostreams.StretchLinear(g, mapped, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	zoomed, _, err := geostreams.ZoomIn(g, stretched, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := geostreams.ZoomOut(g, zoomed, 2)
	if err != nil {
		t.Fatal(err)
	}
	utm, err := geostreams.ParseCRS("utm:10")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := geostreams.Reproject(g, back, utm)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := geostreams.Collect(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range chunks {
		c.ForEachPoint(func(_ geostreams.Point, v float64) {
			if !math.IsNaN(v) {
				n++
				if v < -0.001 || v > 255.001 {
					t.Fatalf("value %g escaped stretch range", v)
				}
			}
		})
	}
	if n == 0 {
		t.Fatal("facade pipeline produced nothing")
	}
}

func TestFacadeQueryAPI(t *testing.T) {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)
	scene := geostreams.DefaultScene(5)
	im, err := geostreams.NewLatLonImager(geostreams.R(-122, 36, -120, 38),
		16, 12, scene, []string{"vis", "nir"}, geostreams.RowByRow, 1)
	if err != nil {
		t.Fatal(err)
	}
	sources, err := im.Streams(g)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]geostreams.Info{
		"vis": im.Info(im.Bands[0]),
		"nir": im.Info(im.Bands[1]),
	}
	plan, err := geostreams.ParseQuery(
		"rselect(ndvi(nir, vis), rect(-121.5, 36.5, -120.5, 37.5))",
		map[string]bool{"vis": true, "nir": true})
	if err != nil {
		t.Fatal(err)
	}
	plan, err = geostreams.OptimizeQuery(plan, catalog)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := geostreams.ExplainQuery(plan, catalog)
	if err != nil || len(exp) == 0 {
		t.Fatalf("explain: %v", err)
	}
	out, _, err := geostreams.BuildQuery(g, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := geostreams.Collect(ctx, out); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCompose(t *testing.T) {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)
	bands := facadePipeline(t, g, 1)
	sum, _, err := geostreams.Compose(g, geostreams.Add, bands["nir"], bands["vis"])
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := geostreams.Collect(ctx, sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("compose produced nothing")
	}
}

func TestFacadeAssembler(t *testing.T) {
	ctx := context.Background()
	g := geostreams.NewGroup(ctx)
	bands := facadePipeline(t, g, 2)
	go func() { _, _ = geostreams.Collect(ctx, bands["nir"]) }()
	asm := geostreams.NewAssembler()
	frames := 0
	chunks, err := geostreams.Collect(ctx, bands["vis"])
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		imgs, err := asm.Add(c)
		if err != nil {
			t.Fatal(err)
		}
		frames += len(imgs)
	}
	if frames != 2 {
		t.Fatalf("assembled %d frames, want 2", frames)
	}
}

func TestFacadeServer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := geostreams.NewServer(ctx)
	scene := geostreams.DefaultScene(5)
	im, err := geostreams.NewLatLonImager(geostreams.R(-122, 36, -120, 38),
		16, 12, scene, []string{"vis"}, geostreams.RowByRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := im.Streams(srv.Group())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddSource(streams["vis"]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close() //nolint:errcheck

	client := geostreams.NewServerClient(ts.URL)
	qi, err := client.Register("vis", "gray")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	f, ok, err := client.NextFrame(int64(qi.ID), 5*time.Second)
	if err != nil || !ok || len(f.PNG) == 0 {
		t.Fatalf("frame: %v ok=%v", err, ok)
	}
}
